//! The partitioning algorithm.
//!
//! Constraint (from the paper's compile-time approach): every instrumented
//! access site is specialized for exactly *one* partition's metadata, so
//! all allocation sites an access may touch must live in the same
//! partition. The best (finest) sound partitioning is therefore the set of
//! connected components of the bipartite graph (alloc sites) — (access
//! sites), computed here as a union-find closure.
//!
//! Two strategies are provided:
//!
//! * [`Strategy::MayTouch`] — the paper's analysis: merge exactly what the
//!   points-to sets force. Finest sound result.
//! * [`Strategy::TypeSeeded`] — additionally pre-merges sites of the same
//!   type, modelling a cruder per-type specialization (useful as a
//!   baseline in the partition census, Table T1).

use std::collections::BTreeMap;

use crate::model::{AccessId, AllocId, ModelError, ProgramModel};
use crate::unionfind::UnionFind;

/// Partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Merge only what access sites force (finest sound partitioning).
    MayTouch,
    /// Additionally merge allocation sites of identical `type_name`.
    TypeSeeded,
}

/// One computed partition: a set of allocation sites plus the access sites
/// that target it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionClass {
    /// Dense class index (0-based, ordered by smallest member alloc id —
    /// deterministic across runs).
    pub index: usize,
    /// Suggested partition name (joined member names, truncated).
    pub name: String,
    /// Member allocation sites (sorted).
    pub alloc_sites: Vec<AllocId>,
    /// Access sites specialized for this partition (sorted).
    pub access_sites: Vec<AccessId>,
}

/// Result of partitioning a [`ProgramModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Program name (copied from the model).
    pub program: String,
    /// Strategy used.
    pub strategy: Strategy,
    /// The classes, ordered deterministically.
    pub classes: Vec<PartitionClass>,
    alloc_to_class: BTreeMap<AllocId, usize>,
    access_to_class: BTreeMap<AccessId, usize>,
}

impl PartitionPlan {
    /// Class index of an allocation site.
    pub fn class_of_alloc(&self, a: AllocId) -> Option<usize> {
        self.alloc_to_class.get(&a).copied()
    }

    /// Class index of an access site.
    pub fn class_of_access(&self, s: AccessId) -> Option<usize> {
        self.access_to_class.get(&s).copied()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.classes.len()
    }
}

/// Computes the partitioning of a validated model.
///
/// # Errors
///
/// Returns the model's validation error if it is inconsistent.
pub fn partition(model: &ProgramModel, strategy: Strategy) -> Result<PartitionPlan, ModelError> {
    model.validate()?;
    // Dense renumbering of alloc ids.
    let mut dense: BTreeMap<AllocId, usize> = BTreeMap::new();
    for a in &model.alloc_sites {
        let n = dense.len();
        dense.insert(a.id, n);
    }
    let mut uf = UnionFind::new(dense.len());

    if strategy == Strategy::TypeSeeded {
        let mut by_type: BTreeMap<&str, usize> = BTreeMap::new();
        for a in &model.alloc_sites {
            let d = dense[&a.id];
            match by_type.get(a.type_name.as_str()) {
                Some(&first) => {
                    uf.union(first, d);
                }
                None => {
                    by_type.insert(&a.type_name, d);
                }
            }
        }
    }

    for s in &model.access_sites {
        let first = dense[&s.may_touch[0]];
        for t in &s.may_touch[1..] {
            uf.union(first, dense[t]);
        }
    }

    // Roots -> dense class indices, ordered by smallest member alloc id
    // (alloc_sites iteration order is id order only if the model is sorted;
    // sort members explicitly below for determinism).
    let mut members: BTreeMap<usize, Vec<AllocId>> = BTreeMap::new();
    for a in &model.alloc_sites {
        let root = uf.find(dense[&a.id]);
        members.entry(root).or_default().push(a.id);
    }
    let mut class_list: Vec<Vec<AllocId>> = members.into_values().collect();
    for m in &mut class_list {
        m.sort_unstable();
    }
    class_list.sort_by_key(|m| m[0]);

    let mut alloc_to_class = BTreeMap::new();
    for (idx, m) in class_list.iter().enumerate() {
        for &a in m {
            alloc_to_class.insert(a, idx);
        }
    }
    let mut access_lists: Vec<Vec<AccessId>> = vec![Vec::new(); class_list.len()];
    let mut access_to_class = BTreeMap::new();
    for s in &model.access_sites {
        let c = alloc_to_class[&s.may_touch[0]];
        debug_assert!(
            s.may_touch.iter().all(|t| alloc_to_class[t] == c),
            "partitioning unsound for access {}",
            s.id
        );
        access_lists[c].push(s.id);
        access_to_class.insert(s.id, c);
    }

    let name_of = |ids: &[AllocId]| -> String {
        let names: Vec<&str> = ids
            .iter()
            .take(3)
            .filter_map(|id| {
                model
                    .alloc_sites
                    .iter()
                    .find(|a| a.id == *id)
                    .map(|a| a.name.as_str())
            })
            .collect();
        let mut n = names.join("+");
        if ids.len() > 3 {
            n.push_str(&format!("+{}more", ids.len() - 3));
        }
        n
    };

    let classes = class_list
        .into_iter()
        .enumerate()
        .map(|(index, alloc_sites)| PartitionClass {
            index,
            name: name_of(&alloc_sites),
            access_sites: {
                let mut v = std::mem::take(&mut access_lists[index]);
                v.sort_unstable();
                v
            },
            alloc_sites,
        })
        .collect();

    Ok(PartitionPlan {
        program: model.name.clone(),
        strategy,
        classes,
        alloc_to_class,
        access_to_class,
    })
}

/// Explains why two allocation sites were merged: a chain of access sites
/// connecting them in the bipartite graph (BFS, shortest). `None` if they
/// are in different partitions (or identical).
pub fn merge_chain(model: &ProgramModel, from: AllocId, to: AllocId) -> Option<Vec<AccessId>> {
    if from == to {
        return Some(Vec::new());
    }
    // BFS over alloc sites, edges = access sites.
    let mut prev: BTreeMap<AllocId, (AllocId, AccessId)> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    prev.insert(from, (from, u32::MAX));
    while let Some(cur) = queue.pop_front() {
        for s in &model.access_sites {
            if !s.may_touch.contains(&cur) {
                continue;
            }
            for &next in &s.may_touch {
                if prev.contains_key(&next) {
                    continue;
                }
                prev.insert(next, (cur, s.id));
                if next == to {
                    // Reconstruct.
                    let mut chain = Vec::new();
                    let mut node = to;
                    while node != from {
                        let (p, acc) = prev[&node];
                        chain.push(acc);
                        node = p;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessKind, ModelBuilder};

    /// The motivating example from the paper's introduction: a linked list
    /// with a high update rate and a red-black tree with a low one, plus a
    /// second red-black tree. Accesses never span structures, so the
    /// partitioner must keep all three apart.
    fn intro_example() -> ProgramModel {
        let mut b = ModelBuilder::new("intro");
        let list = b.alloc("list_nodes", "ListNode");
        let t1 = b.alloc("tree1_nodes", "TreeNode");
        let t2 = b.alloc("tree2_nodes", "TreeNode");
        b.access("list_insert", AccessKind::Write, &[list]);
        b.access("list_lookup", AccessKind::Read, &[list]);
        b.access("tree1_insert", AccessKind::Write, &[t1]);
        b.access("tree2_lookup", AccessKind::Read, &[t2]);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_structures_stay_separate() {
        let m = intro_example();
        let plan = partition(&m, Strategy::MayTouch).unwrap();
        assert_eq!(plan.partition_count(), 3);
        assert_ne!(plan.class_of_alloc(1), plan.class_of_alloc(2));
    }

    #[test]
    fn type_seeding_merges_same_type() {
        let m = intro_example();
        let plan = partition(&m, Strategy::TypeSeeded).unwrap();
        // The two TreeNode structures collapse under per-type metadata.
        assert_eq!(plan.partition_count(), 2);
        assert_eq!(plan.class_of_alloc(1), plan.class_of_alloc(2));
        assert_ne!(plan.class_of_alloc(0), plan.class_of_alloc(1));
    }

    #[test]
    fn spanning_access_forces_merge() {
        let mut b = ModelBuilder::new("span");
        let a = b.alloc("a", "A");
        let c = b.alloc("b", "B");
        let d = b.alloc("c", "C");
        b.access("move_between", AccessKind::ReadWrite, &[a, c]);
        b.access("read_c", AccessKind::Read, &[d]);
        let m = b.build().unwrap();
        let plan = partition(&m, Strategy::MayTouch).unwrap();
        assert_eq!(plan.partition_count(), 2);
        assert_eq!(plan.class_of_alloc(0), plan.class_of_alloc(1));
        assert_ne!(plan.class_of_alloc(0), plan.class_of_alloc(2));
    }

    #[test]
    fn transitive_merging_via_chain() {
        // a-b via s1, b-c via s2 => one class {a,b,c}.
        let mut b = ModelBuilder::new("chain");
        let x = b.alloc("x", "T");
        let y = b.alloc("y", "T");
        let z = b.alloc("z", "T");
        let s1 = b.access("s1", AccessKind::Read, &[x, y]);
        let s2 = b.access("s2", AccessKind::Read, &[y, z]);
        let m = b.build().unwrap();
        let plan = partition(&m, Strategy::MayTouch).unwrap();
        assert_eq!(plan.partition_count(), 1);
        let chain = merge_chain(&m, x, z).unwrap();
        assert_eq!(chain, vec![s1, s2]);
        assert_eq!(merge_chain(&m, x, x), Some(vec![]));
    }

    #[test]
    fn merge_chain_none_across_partitions() {
        let m = intro_example();
        assert_eq!(merge_chain(&m, 0, 1), None);
    }

    #[test]
    fn every_access_lands_in_exactly_one_class() {
        let m = intro_example();
        let plan = partition(&m, Strategy::MayTouch).unwrap();
        for s in &m.access_sites {
            let c = plan.class_of_access(s.id).unwrap();
            for t in &s.may_touch {
                assert_eq!(plan.class_of_alloc(*t), Some(c));
            }
        }
        let total: usize = plan.classes.iter().map(|c| c.access_sites.len()).sum();
        assert_eq!(total, m.access_sites.len());
    }

    #[test]
    fn class_order_is_deterministic() {
        let m = intro_example();
        let p1 = partition(&m, Strategy::MayTouch).unwrap();
        // Shuffle site order; ids unchanged.
        let mut m2 = m.clone();
        m2.alloc_sites.reverse();
        m2.access_sites.reverse();
        let p2 = partition(&m2, Strategy::MayTouch).unwrap();
        assert_eq!(p1.partition_count(), p2.partition_count());
        for (c1, c2) in p1.classes.iter().zip(&p2.classes) {
            assert_eq!(c1.alloc_sites, c2.alloc_sites);
            assert_eq!(c1.access_sites, c2.access_sites);
        }
    }

    #[test]
    fn class_names_are_descriptive() {
        let m = intro_example();
        let plan = partition(&m, Strategy::MayTouch).unwrap();
        assert_eq!(plan.classes[0].name, "list_nodes");
        let mut b = ModelBuilder::new("many");
        let ids: Vec<_> = (0..5).map(|i| b.alloc(format!("s{i}"), "T")).collect();
        b.access("all", AccessKind::Read, &ids);
        let plan = partition(&b.build().unwrap(), Strategy::MayTouch).unwrap();
        assert!(plan.classes[0].name.contains("2more"));
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut m = intro_example();
        m.access_sites[0].may_touch = vec![77];
        assert!(partition(&m, Strategy::MayTouch).is_err());
    }
}
