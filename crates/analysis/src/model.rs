//! The program model: the analysis IR.
//!
//! The paper's compile-time pass (Tanger/LLVM plus the data-structure
//! analysis of its reference \[6\]) consumes a points-to view of the program:
//! *allocation sites* (where transactional data is created) and *access
//! sites* (instrumented loads/stores) each annotated with the set of
//! allocation sites they may touch. This module defines that view as an
//! explicit, serializable data structure — the substitution for the LLVM
//! frontend documented in DESIGN.md. Everything downstream (the partitioner
//! itself) is the paper's algorithm unchanged.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{Json, JsonError};

/// Identifier of an allocation site within one model.
pub type AllocId = u32;
/// Identifier of an access site within one model.
pub type AccessId = u32;

/// What an access site does to the data it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Transactional load.
    Read,
    /// Transactional store.
    Write,
    /// Both (e.g. a read-modify-write sequence).
    ReadWrite,
}

/// A static allocation site: one place in the program where transactional
/// data is created (e.g. "the nodes of the car table's red-black tree").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Unique id within the model.
    pub id: AllocId,
    /// Human-readable name (e.g. `"car_table_nodes"`).
    pub name: String,
    /// The allocated type (used by the type-seeded strategy).
    pub type_name: String,
    /// Optional allocation context (k-CFA style call-site string). Sites
    /// that differ only in context model a context-sensitive analysis; see
    /// [`ProgramModel::collapse_contexts`]. Serialized as JSON `null` when
    /// `None`; an absent member also decodes as `None`.
    pub context: Option<String>,
}

/// A static access site: one instrumented transactional load/store, with
/// the set of allocation sites the points-to analysis says it may touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSite {
    /// Unique id within the model.
    pub id: AccessId,
    /// Enclosing function (for reports).
    pub func: String,
    /// Load / store / both.
    pub kind: AccessKind,
    /// Allocation sites this access may touch (points-to result). The
    /// partitioner's constraint: all of these must land in one partition,
    /// because the instrumented code is specialized for a single
    /// partition's metadata.
    pub may_touch: Vec<AllocId>,
}

/// A whole-program model: the input to the partitioner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramModel {
    /// Program/benchmark name.
    pub name: String,
    /// All allocation sites.
    pub alloc_sites: Vec<AllocSite>,
    /// All access sites.
    pub access_sites: Vec<AccessSite>,
}

/// Validation problems in a [`ProgramModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two allocation sites share an id.
    DuplicateAllocId(AllocId),
    /// Two access sites share an id.
    DuplicateAccessId(AccessId),
    /// An access site references an unknown allocation site.
    UnknownAllocSite {
        /// The offending access site.
        access: AccessId,
        /// The dangling reference.
        alloc: AllocId,
    },
    /// An access site touches nothing (the frontend should have dropped it).
    EmptyMayTouch(AccessId),
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::DuplicateAllocId(id) => write!(f, "duplicate allocation-site id {id}"),
            ModelError::DuplicateAccessId(id) => write!(f, "duplicate access-site id {id}"),
            ModelError::UnknownAllocSite { access, alloc } => {
                write!(
                    f,
                    "access site {access} references unknown alloc site {alloc}"
                )
            }
            ModelError::EmptyMayTouch(id) => write!(f, "access site {id} has empty may-touch set"),
        }
    }
}

impl std::error::Error for ModelError {}

impl ProgramModel {
    /// Checks internal consistency; the partitioner requires a valid model.
    pub fn validate(&self) -> Result<(), ModelError> {
        let mut alloc_ids = BTreeSet::new();
        for a in &self.alloc_sites {
            if !alloc_ids.insert(a.id) {
                return Err(ModelError::DuplicateAllocId(a.id));
            }
        }
        let mut access_ids = BTreeSet::new();
        for s in &self.access_sites {
            if !access_ids.insert(s.id) {
                return Err(ModelError::DuplicateAccessId(s.id));
            }
            if s.may_touch.is_empty() {
                return Err(ModelError::EmptyMayTouch(s.id));
            }
            for &t in &s.may_touch {
                if !alloc_ids.contains(&t) {
                    return Err(ModelError::UnknownAllocSite {
                        access: s.id,
                        alloc: t,
                    });
                }
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON (the wire format `serde_json` would emit
    /// for these structs, so external tooling sees a stable schema).
    pub fn to_json(&self) -> String {
        let alloc_sites = self
            .alloc_sites
            .iter()
            .map(|a| {
                let mut members = vec![
                    ("id".to_owned(), Json::Num(a.id as f64)),
                    ("name".to_owned(), Json::Str(a.name.clone())),
                    ("type_name".to_owned(), Json::Str(a.type_name.clone())),
                ];
                members.push((
                    "context".to_owned(),
                    match &a.context {
                        Some(c) => Json::Str(c.clone()),
                        None => Json::Null,
                    },
                ));
                Json::Obj(members)
            })
            .collect();
        let access_sites = self
            .access_sites
            .iter()
            .map(|s| {
                let kind = match s.kind {
                    AccessKind::Read => "Read",
                    AccessKind::Write => "Write",
                    AccessKind::ReadWrite => "ReadWrite",
                };
                Json::Obj(vec![
                    ("id".to_owned(), Json::Num(s.id as f64)),
                    ("func".to_owned(), Json::Str(s.func.clone())),
                    ("kind".to_owned(), Json::Str(kind.to_owned())),
                    (
                        "may_touch".to_owned(),
                        Json::Arr(s.may_touch.iter().map(|&t| Json::Num(t as f64)).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("alloc_sites".to_owned(), Json::Arr(alloc_sites)),
            ("access_sites".to_owned(), Json::Arr(access_sites)),
        ])
        .to_string_pretty()
    }

    /// Parses a model from JSON and validates it.
    pub fn from_json(s: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let m = Self::decode(&Json::parse(s)?)?;
        m.validate()?;
        Ok(m)
    }

    fn decode(v: &Json) -> Result<ProgramModel, JsonError> {
        fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
            obj.get(key)
                .ok_or_else(|| JsonError(format!("missing field `{key}`")))
        }
        let str_field = |obj: &Json, key: &str| -> Result<String, JsonError> {
            field(obj, key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| JsonError(format!("field `{key}` must be a string")))
        };
        let u32_field = |obj: &Json, key: &str| -> Result<u32, JsonError> {
            field(obj, key)?
                .as_u32()
                .ok_or_else(|| JsonError(format!("field `{key}` must be a u32")))
        };

        let mut alloc_sites = Vec::new();
        for a in field(v, "alloc_sites")?
            .as_arr()
            .ok_or_else(|| JsonError("`alloc_sites` must be an array".into()))?
        {
            let context = match a.get("context") {
                None | Some(Json::Null) => None,
                Some(Json::Str(c)) => Some(c.clone()),
                Some(_) => return Err(JsonError("`context` must be a string or null".into())),
            };
            alloc_sites.push(AllocSite {
                id: u32_field(a, "id")?,
                name: str_field(a, "name")?,
                type_name: str_field(a, "type_name")?,
                context,
            });
        }

        let mut access_sites = Vec::new();
        for s in field(v, "access_sites")?
            .as_arr()
            .ok_or_else(|| JsonError("`access_sites` must be an array".into()))?
        {
            let kind = match str_field(s, "kind")?.as_str() {
                "Read" => AccessKind::Read,
                "Write" => AccessKind::Write,
                "ReadWrite" => AccessKind::ReadWrite,
                other => return Err(JsonError(format!("unknown access kind `{other}`"))),
            };
            let may_touch = field(s, "may_touch")?
                .as_arr()
                .ok_or_else(|| JsonError("`may_touch` must be an array".into()))?
                .iter()
                .map(|t| {
                    t.as_u32()
                        .ok_or_else(|| JsonError("`may_touch` entries must be u32".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            access_sites.push(AccessSite {
                id: u32_field(s, "id")?,
                func: str_field(s, "func")?,
                kind,
                may_touch,
            });
        }

        Ok(ProgramModel {
            name: str_field(v, "name")?,
            alloc_sites,
            access_sites,
        })
    }

    /// Produces the *context-insensitive* version of this model: allocation
    /// sites that differ only in `context` are merged (keeping the lowest
    /// id) and access-site may-touch sets are rewritten accordingly.
    ///
    /// Comparing partition counts before/after shows the value of the
    /// context-sensitive analysis (paper: more, finer partitions).
    pub fn collapse_contexts(&self) -> ProgramModel {
        // Group by (name, type): representative = smallest id.
        let mut rep: BTreeMap<(String, String), AllocId> = BTreeMap::new();
        let mut remap: BTreeMap<AllocId, AllocId> = BTreeMap::new();
        for a in &self.alloc_sites {
            let key = (a.name.clone(), a.type_name.clone());
            let r = *rep.entry(key).or_insert(a.id);
            remap.insert(a.id, r.min(a.id));
        }
        // Normalize representatives to the minimum id in each group.
        let mut group_min: BTreeMap<(String, String), AllocId> = BTreeMap::new();
        for a in &self.alloc_sites {
            let key = (a.name.clone(), a.type_name.clone());
            let e = group_min.entry(key).or_insert(a.id);
            *e = (*e).min(a.id);
        }
        for a in &self.alloc_sites {
            let key = (a.name.clone(), a.type_name.clone());
            remap.insert(a.id, group_min[&key]);
        }
        let mut seen = BTreeSet::new();
        let alloc_sites = self
            .alloc_sites
            .iter()
            .filter(|a| seen.insert(remap[&a.id]) && remap[&a.id] == a.id)
            .map(|a| AllocSite {
                context: None,
                ..a.clone()
            })
            .collect();
        let access_sites = self
            .access_sites
            .iter()
            .map(|s| {
                let mut touched: Vec<AllocId> = s.may_touch.iter().map(|t| remap[t]).collect();
                touched.sort_unstable();
                touched.dedup();
                AccessSite {
                    may_touch: touched,
                    ..s.clone()
                }
            })
            .collect();
        ProgramModel {
            name: format!("{}(ctx-insensitive)", self.name),
            alloc_sites,
            access_sites,
        }
    }

    /// Looks up an allocation site by name (first match).
    pub fn alloc_by_name(&self, name: &str) -> Option<&AllocSite> {
        self.alloc_sites.iter().find(|a| a.name == name)
    }
}

/// Fluent builder for models written by hand (as the benchmark apps do for
/// their `partition_plan()`).
#[derive(Debug, Default)]
pub struct ModelBuilder {
    model: ProgramModel,
    next_alloc: AllocId,
    next_access: AccessId,
}

impl ModelBuilder {
    /// Starts a model with the given program name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            model: ProgramModel {
                name: name.into(),
                ..Default::default()
            },
            next_alloc: 0,
            next_access: 0,
        }
    }

    /// Adds an allocation site; returns its id.
    pub fn alloc(&mut self, name: impl Into<String>, type_name: impl Into<String>) -> AllocId {
        let id = self.next_alloc;
        self.next_alloc += 1;
        self.model.alloc_sites.push(AllocSite {
            id,
            name: name.into(),
            type_name: type_name.into(),
            context: None,
        });
        id
    }

    /// Adds a context-tagged allocation site; returns its id.
    pub fn alloc_in_context(
        &mut self,
        name: impl Into<String>,
        type_name: impl Into<String>,
        context: impl Into<String>,
    ) -> AllocId {
        let id = self.alloc(name, type_name);
        self.model.alloc_sites.last_mut().unwrap().context = Some(context.into());
        id
    }

    /// Adds an access site touching the given allocation sites.
    pub fn access(
        &mut self,
        func: impl Into<String>,
        kind: AccessKind,
        may_touch: &[AllocId],
    ) -> AccessId {
        let id = self.next_access;
        self.next_access += 1;
        self.model.access_sites.push(AccessSite {
            id,
            func: func.into(),
            kind,
            may_touch: may_touch.to_vec(),
        });
        id
    }

    /// Finishes and validates the model.
    pub fn build(self) -> Result<ProgramModel, ModelError> {
        self.model.validate()?;
        Ok(self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProgramModel {
        let mut b = ModelBuilder::new("tiny");
        let a = b.alloc("list", "List");
        let c = b.alloc("tree", "Tree");
        b.access("insert", AccessKind::Write, &[a]);
        b.access("lookup", AccessKind::Read, &[c]);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let m = tiny();
        assert_eq!(m.alloc_sites[0].id, 0);
        assert_eq!(m.alloc_sites[1].id, 1);
        assert_eq!(m.access_sites[1].id, 1);
    }

    #[test]
    fn validation_catches_dangling_reference() {
        let mut m = tiny();
        m.access_sites[0].may_touch = vec![99];
        assert_eq!(
            m.validate(),
            Err(ModelError::UnknownAllocSite {
                access: 0,
                alloc: 99
            })
        );
    }

    #[test]
    fn validation_catches_duplicates_and_empties() {
        let mut m = tiny();
        m.alloc_sites[1].id = 0;
        assert_eq!(m.validate(), Err(ModelError::DuplicateAllocId(0)));

        let mut m = tiny();
        m.access_sites[0].may_touch.clear();
        assert_eq!(m.validate(), Err(ModelError::EmptyMayTouch(0)));

        let mut m = tiny();
        m.access_sites[1].id = 0;
        assert_eq!(m.validate(), Err(ModelError::DuplicateAccessId(0)));
    }

    #[test]
    fn json_roundtrip() {
        let m = tiny();
        let j = m.to_json();
        let m2 = ProgramModel::from_json(&j).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn json_rejects_invalid_model() {
        let mut m = tiny();
        m.access_sites[0].may_touch = vec![99];
        let j = m.to_json();
        assert!(ProgramModel::from_json(&j).is_err());
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(ProgramModel::from_json("not json").is_err());
        assert!(ProgramModel::from_json(r#"{"name":"x"}"#).is_err());
        assert!(ProgramModel::from_json(
            r#"{"name":"x","alloc_sites":[],"access_sites":[{"id":0,"func":"f","kind":"Nope","may_touch":[0]}]}"#
        )
        .is_err());
    }

    #[test]
    fn json_context_field_roundtrips_and_defaults() {
        let mut b = ModelBuilder::new("ctx");
        let a = b.alloc_in_context("node", "Node", "main->f");
        b.access("f", AccessKind::Read, &[a]);
        let m = b.build().unwrap();
        let m2 = ProgramModel::from_json(&m.to_json()).unwrap();
        assert_eq!(m, m2);
        // A missing `context` member decodes as None (serde's #[serde(default)]).
        let j = r#"{"name":"x","alloc_sites":[{"id":0,"name":"a","type_name":"T"}],
                    "access_sites":[{"id":0,"func":"f","kind":"Read","may_touch":[0]}]}"#;
        let m3 = ProgramModel::from_json(j).unwrap();
        assert_eq!(m3.alloc_sites[0].context, None);
    }

    #[test]
    fn collapse_contexts_merges_same_name_and_type() {
        let mut b = ModelBuilder::new("ctx");
        let a1 = b.alloc_in_context("node", "Node", "main->build_a");
        let a2 = b.alloc_in_context("node", "Node", "main->build_b");
        let c = b.alloc("other", "Other");
        b.access("fa", AccessKind::Read, &[a1]);
        b.access("fb", AccessKind::Write, &[a2]);
        b.access("fc", AccessKind::Read, &[c, a2]);
        let m = b.build().unwrap();
        let flat = m.collapse_contexts();
        assert_eq!(flat.alloc_sites.len(), 2, "two contexts merged into one");
        flat.validate().unwrap();
        // Access sites now reference the representative.
        assert_eq!(
            flat.access_sites[0].may_touch,
            flat.access_sites[1].may_touch
        );
    }

    #[test]
    fn alloc_by_name_finds_sites() {
        let m = tiny();
        assert!(m.alloc_by_name("tree").is_some());
        assert!(m.alloc_by_name("nope").is_none());
    }
}
