//! A minimal JSON value, parser and pretty-printer.
//!
//! The program model is (de)serialized to JSON so frontends can hand
//! models to the partitioner as plain files. The build environment has no
//! registry access, so instead of `serde`/`serde_json` this module
//! implements the small subset of JSON the model schema needs; the wire
//! format matches what `serde_json` would emit for the same structs, so
//! swapping the real crates back in later is a drop-in change.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (the model only uses non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or schema error, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Parses a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as a `u32`, if this is a non-negative integer in range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u32::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Prints compactly on one line.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1, pretty);
                    item.write(out, depth + 1, pretty);
                }
                newline_indent(out, depth, pretty);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1, pretty);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                newline_indent(out, depth, pretty);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Containers may nest at most this deep before parsing bails out; the
/// parser recurses per level, so an unchecked limit would let hostile
/// input (`[[[[...`) overflow the stack instead of returning `Err`.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| JsonError("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the model
                            // schema; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances by
                    // whole scalars or ASCII, so it is always a char
                    // boundary of the (already-valid) input `&str` and the
                    // slice below is O(1) — no re-validation of the tail.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty_and_compact() {
        let src = r#"{"name":"m","items":[1,2,3],"flag":true,"none":null,"s":"a\"b\n"}"#;
        let v = Json::parse(src).unwrap();
        let pretty = v.to_string_pretty();
        let compact = v.to_string_compact();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(compact, src);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":[{"id":7}],"s":"x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("id").and_then(Json::as_u32), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u32(), None);
        assert_eq!(Json::Num(-1.0).as_u32(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse(r#"{"a":1} trailing"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let nested_objs = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&nested_objs).is_err());
        // Sibling (non-nested) structure of any length stays fine.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""A\té""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t\u{e9}"));
    }
}
