//! Partition census reporting (the static half of the paper's Table T1).

use crate::model::ProgramModel;
use crate::partitioner::{partition, PartitionPlan, Strategy};

/// Static census of one program's partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Census {
    /// Program name.
    pub program: String,
    /// Total allocation sites in the model.
    pub alloc_sites: usize,
    /// Total access sites in the model.
    pub access_sites: usize,
    /// Partitions under the may-touch (paper) strategy.
    pub partitions: usize,
    /// Partitions under the coarser type-seeded strategy.
    pub partitions_type_seeded: usize,
    /// Partitions when contexts are collapsed (context-insensitive).
    pub partitions_ctx_insensitive: usize,
    /// Per-class summaries (may-touch strategy).
    pub classes: Vec<ClassSummary>,
}

/// One row per partition in the census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSummary {
    /// Class index.
    pub index: usize,
    /// Derived partition name.
    pub name: String,
    /// Member allocation-site count.
    pub alloc_sites: usize,
    /// Specialized access-site count.
    pub access_sites: usize,
}

/// Builds the census for a model (runs all three analyses).
pub fn census(model: &ProgramModel) -> Result<Census, crate::model::ModelError> {
    let may = partition(model, Strategy::MayTouch)?;
    let typed = partition(model, Strategy::TypeSeeded)?;
    let flat = model.collapse_contexts();
    let flat_plan = partition(&flat, Strategy::MayTouch)?;
    Ok(Census {
        program: model.name.clone(),
        alloc_sites: model.alloc_sites.len(),
        access_sites: model.access_sites.len(),
        partitions: may.partition_count(),
        partitions_type_seeded: typed.partition_count(),
        partitions_ctx_insensitive: flat_plan.partition_count(),
        classes: class_summaries(&may),
    })
}

fn class_summaries(plan: &PartitionPlan) -> Vec<ClassSummary> {
    plan.classes
        .iter()
        .map(|c| ClassSummary {
            index: c.index,
            name: c.name.clone(),
            alloc_sites: c.alloc_sites.len(),
            access_sites: c.access_sites.len(),
        })
        .collect()
}

impl Census {
    /// Renders the census as an aligned text table (harness output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "program={} alloc_sites={} access_sites={} partitions={} \
             (type-seeded={}, ctx-insensitive={})\n",
            self.program,
            self.alloc_sites,
            self.access_sites,
            self.partitions,
            self.partitions_type_seeded,
            self.partitions_ctx_insensitive
        ));
        out.push_str(&format!(
            "{:<5} {:<40} {:>12} {:>12}\n",
            "class", "name", "alloc_sites", "access_sites"
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "{:<5} {:<40} {:>12} {:>12}\n",
                c.index, c.name, c.alloc_sites, c.access_sites
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessKind, ModelBuilder};

    #[test]
    fn census_counts_are_consistent() {
        let mut b = ModelBuilder::new("app");
        let l = b.alloc("list", "List");
        let t1 = b.alloc_in_context("tree", "Tree", "ctx-a");
        let t2 = b.alloc_in_context("tree", "Tree", "ctx-b");
        b.access("f1", AccessKind::Write, &[l]);
        b.access("f2", AccessKind::Read, &[t1]);
        b.access("f3", AccessKind::Read, &[t2]);
        let m = b.build().unwrap();
        let c = census(&m).unwrap();
        assert_eq!(c.alloc_sites, 3);
        assert_eq!(c.access_sites, 3);
        assert_eq!(c.partitions, 3, "context-sensitive: trees distinct");
        assert_eq!(c.partitions_type_seeded, 2, "trees merged by type");
        assert_eq!(c.partitions_ctx_insensitive, 2, "contexts merged");
        assert_eq!(c.classes.len(), 3);
        let table = c.to_table();
        assert!(table.contains("partitions=3"));
        assert!(table.contains("list"));
    }
}
