//! # partstm-analysis — automatic compile-time data partitioning
//!
//! Reproduction of the static half of *"Automatic Data Partitioning in
//! Software Transactional Memories"* (SPAA 2008): given a points-to view of
//! a program (allocation sites + access sites with may-touch sets), compute
//! the finest partitioning of transactional data such that every access
//! site targets exactly one partition's metadata — the soundness condition
//! the paper's compiler pass (Tanger + the data-structure analysis of its
//! reference \[6\]) establishes.
//!
//! In the original system the frontend is an LLVM pass; here the program
//! model is an explicit (serializable) structure the benchmarks construct —
//! see DESIGN.md's substitution table. The partitioning algorithm itself
//! (union-find closure over may-touch sets) is the paper's.
//!
//! ```
//! use partstm_analysis::{partition, AccessKind, ModelBuilder, Strategy};
//!
//! let mut b = ModelBuilder::new("demo");
//! let list = b.alloc("list_nodes", "ListNode");
//! let tree = b.alloc("tree_nodes", "TreeNode");
//! b.access("list_insert", AccessKind::Write, &[list]);
//! b.access("tree_lookup", AccessKind::Read, &[tree]);
//! let model = b.build().unwrap();
//!
//! let plan = partition(&model, Strategy::MayTouch).unwrap();
//! assert_eq!(plan.partition_count(), 2); // list and tree get private metadata
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod model;
pub mod online;
pub mod partitioner;
pub mod report;
pub mod runtime;
pub mod unionfind;

pub use model::{
    AccessId, AccessKind, AccessSite, AllocId, AllocSite, ModelBuilder, ModelError, ProgramModel,
};
pub use online::{NodeLoad, OnlineAnalyzer, OnlineConfig, Proposal};
pub use partitioner::{merge_chain, partition, PartitionClass, PartitionPlan, Strategy};
pub use report::{census, Census, ClassSummary};
pub use runtime::MaterializePlan;
pub use unionfind::UnionFind;
