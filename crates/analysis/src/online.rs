//! Online repartitioning analysis: fold sampled runtime traces into an
//! affinity/conflict view and propose partition splits and merges.
//!
//! This is the dynamic counterpart of the static partitioner: where
//! [`partition`](crate::partitioner::partition()) closes may-touch sets the
//! *compiler* derived, the [`OnlineAnalyzer`] closes *observed* co-access
//! sets the sampled profiler (`partstm_core::profiler`) reports while the
//! program runs. Nodes of the graph are `(partition, address bucket)`
//! pairs; edges are weighted by how often two buckets were touched by the
//! same transaction (affinity) and annotated with write pressure
//! (conflict potential).
//!
//! Two outputs:
//!
//! * [`OnlineAnalyzer::proposals`] — actionable [`Proposal::Split`] /
//!   [`Proposal::Merge`] decisions, computed by an incremental union-find
//!   over *strong* affinity edges followed by a min-cut-style hot-edge
//!   splitter: strong edges are never cut (splitting co-accessed data
//!   would turn every transaction multi-partition), weak edges are, and
//!   the hottest write-heavy components are taken as the split set.
//! * [`OnlineAnalyzer::plan`] — the same affinity closure expressed as a
//!   [`PartitionPlan`] by routing an induced [`ProgramModel`] through the
//!   static partitioner ([`OnlineAnalyzer::to_model`]): every observed
//!   bucket becomes an allocation site, every strong edge an access site,
//!   so the emitted classes are exactly the units the repartitioner may
//!   place independently.

use std::collections::BTreeMap;

use partstm_core::profiler::TxSample;
use partstm_core::{PartitionId, StatCounters};

use crate::model::{AccessKind, ModelBuilder, ModelError, ProgramModel};
use crate::partitioner::{partition, PartitionPlan, Strategy};
use crate::unionfind::UnionFind;

/// A graph node: one address bucket of one partition.
pub type Node = (PartitionId, u16);

/// Per-sample cap on affinity-edge endpoints (bounds graph densification
/// to `O(MAX_EDGE_FANOUT²)` per sample).
const MAX_EDGE_FANOUT: usize = 8;

/// Load observed on one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Sampled reads that landed in the bucket.
    pub reads: u64,
    /// Sampled writes that landed in the bucket.
    pub writes: u64,
    /// Sampled transactions that touched the bucket.
    pub txns: u64,
}

/// Tunable thresholds of the online analysis.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Minimum samples accumulated on a partition before any proposal.
    pub min_samples: u64,
    /// An affinity edge is *strong* (never cut) when its weight is at
    /// least this fraction of the partition's sampled transactions.
    pub strong_edge_fraction: f64,
    /// Propose a split when the partition's abort rate is at least this.
    pub split_abort_rate: f64,
    /// A component is *hot* (worth isolating) when its per-bucket write
    /// load is at least this multiple of the partition's mean per-bucket
    /// write load.
    pub split_hot_factor: f64,
    /// ... and the hot components together carry at least this fraction
    /// of the partition's sampled write load ...
    pub split_hot_share: f64,
    /// ... while spanning at most this fraction of its observed buckets
    /// (a diffuse partition has no hot set worth isolating).
    pub split_max_bucket_fraction: f64,
    /// Propose merging two partitions when both abort below this rate and
    /// they are co-accessed (see `merge_span_fraction`).
    pub merge_abort_rate: f64,
    /// Fraction of either partition's sampled transactions that must span
    /// both partitions to propose a merge (cross-partition transactions
    /// pay per-partition bookkeeping twice; merging removes it).
    pub merge_span_fraction: f64,
    /// Propose an orec-table resize when the partition's abort rate is at
    /// least this (lower than the split gate: growing a table is far
    /// cheaper than a migration, so it may fire earlier).
    pub resize_abort_rate: f64,
    /// ... and at least this fraction of its *classified* conflicts were
    /// aliased (false) conflicts — the engine-side telemetry
    /// (`StatCounters::{conflicts_true, conflicts_aliased}`) that
    /// distinguishes "table too small" from genuine data contention.
    pub resize_min_aliased_share: f64,
    /// Minimum classified conflicts in the window before the aliased
    /// share is trusted (a handful of aborts is noise).
    pub resize_min_classified: u64,
    /// ... and the partition's sampled footprint spans at least this many
    /// profile buckets. A diffuse footprint plus a high aliased share
    /// means unrelated data is hashing onto shared orecs — more orecs fix
    /// it; a *concentrated* footprint is a hot set, which the split path
    /// handles structurally (splits always take precedence).
    pub resize_min_buckets: usize,
    /// Growth factor per executed resize (the table size ladder).
    pub resize_factor: usize,
    /// Largest table the analyzer will propose (further aliasing pressure
    /// past this is better answered by a split).
    pub resize_max_orecs: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            min_samples: 64,
            strong_edge_fraction: 0.40,
            split_abort_rate: 0.10,
            split_hot_factor: 4.0,
            split_hot_share: 0.50,
            split_max_bucket_fraction: 0.25,
            merge_abort_rate: 0.02,
            merge_span_fraction: 0.50,
            resize_abort_rate: 0.05,
            resize_min_aliased_share: 0.50,
            resize_min_classified: 16,
            resize_min_buckets: 16,
            resize_factor: 4,
            resize_max_orecs: 1 << 16,
        }
    }
}

/// One actionable repartitioning decision.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// Move `buckets` of `src` into a fresh partition.
    Split {
        /// The overloaded partition.
        src: PartitionId,
        /// The hot bucket set to take (sorted).
        buckets: Vec<u16>,
        /// Fraction of `src`'s sampled write load the set carries.
        hot_share: f64,
        /// Abort rate that triggered the proposal.
        abort_rate: f64,
    },
    /// Fold `src` into `dst` (both cold, frequently co-accessed).
    Merge {
        /// Partition to dissolve (the smaller commit count of the pair).
        src: PartitionId,
        /// Partition to receive `src`'s variables.
        dst: PartitionId,
        /// Fraction of the busier partition's samples spanning both.
        span_share: f64,
    },
    /// Grow `partition`'s orec table in place to `new_count` records: its
    /// conflicts are dominated by *aliasing* (unrelated addresses hashing
    /// onto shared orecs) over a diffuse footprint — a finer table removes
    /// the false conflicts without moving any data.
    Resize {
        /// The aliasing-bound partition.
        partition: PartitionId,
        /// Proposed table size (records; the runtime rounds/clamps).
        new_count: usize,
        /// Fraction of classified conflicts that were aliased.
        aliased_share: f64,
        /// Abort rate that triggered the proposal.
        abort_rate: f64,
    },
}

/// Runtime facts about one partition the sampled graph cannot see; the
/// controller feeds these alongside the statistics window so proposals can
/// reference current capacities.
#[derive(Debug, Clone, Copy)]
pub struct PartitionMeta {
    /// Current orec-table size (records).
    pub orec_count: usize,
    /// Current version-ring depth (committed versions kept per orec for
    /// the snapshot read path). Telemetry for now: proposals do not yet
    /// resize rings, but reports carry the depth so an operator can
    /// correlate `ring_overflow_pushes` pressure with the configured
    /// history capacity.
    pub ring_depth: usize,
}

/// Per-partition aggregate the analyzer keeps alongside the graph.
#[derive(Debug, Clone, Copy, Default)]
struct PartAgg {
    samples: u64,
    spanning: u64,
}

/// Incremental affinity/conflict analysis over profiler samples.
#[derive(Debug, Default)]
pub struct OnlineAnalyzer {
    nodes: BTreeMap<Node, NodeLoad>,
    /// Co-access weights, keyed with the smaller node first.
    edges: BTreeMap<(Node, Node), u64>,
    /// Cross-partition co-access weights (partition pairs).
    span_edges: BTreeMap<(PartitionId, PartitionId), u64>,
    parts: BTreeMap<PartitionId, PartAgg>,
    samples: u64,
}

impl OnlineAnalyzer {
    /// An empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Observed nodes with their loads (for reports).
    pub fn nodes(&self) -> &BTreeMap<Node, NodeLoad> {
        &self.nodes
    }

    /// Folds one sampled transaction into the graph.
    pub fn observe(&mut self, sample: &TxSample) {
        self.samples += 1;
        let mut written_nodes: Vec<Node> = Vec::new();
        for t in &sample.touched {
            let agg = self.parts.entry(t.partition).or_default();
            agg.samples += 1;
            if sample.spans_partitions() {
                agg.spanning += 1;
            }
            for b in &t.buckets {
                let node = (t.partition, b.bucket);
                let load = self.nodes.entry(node).or_default();
                load.reads += b.reads as u64;
                load.writes += b.writes as u64;
                load.txns += 1;
                if b.writes > 0 {
                    written_nodes.push(node);
                }
            }
        }
        // Span edges: which partition pairs this transaction straddled
        // (touched-partition granularity; cheap, feeds merge decisions).
        for i in 0..sample.touched.len() {
            for j in (i + 1)..sample.touched.len() {
                let (a, b) = (sample.touched[i].partition, sample.touched[j].partition);
                let key = if a < b { (a, b) } else { (b, a) };
                *self.span_edges.entry(key).or_insert(0) += 1;
            }
        }
        // Affinity edges join buckets *written* together — the co-update
        // sets a split must not separate. Read-only fan-in (wide scans)
        // deliberately creates no edges: it would densify the graph
        // quadratically (a 32-read scan is ~500 pairs) and a split never
        // harms a read-only transaction beyond one extra partition view.
        written_nodes.sort_unstable();
        written_nodes.dedup();
        if written_nodes.len() > MAX_EDGE_FANOUT {
            // Cap fan-out by stride-sampling across the sorted set: a
            // plain truncate would deterministically starve high-keyed
            // buckets of affinity edges.
            let stride = written_nodes.len().div_ceil(MAX_EDGE_FANOUT);
            let offset = (self.samples as usize) % stride;
            written_nodes = written_nodes
                .into_iter()
                .skip(offset)
                .step_by(stride)
                .collect();
        }
        for i in 0..written_nodes.len() {
            for j in (i + 1)..written_nodes.len() {
                let (a, b) = (written_nodes[i], written_nodes[j]);
                *self.edges.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Folds a batch of samples.
    pub fn observe_all<'a>(&mut self, samples: impl IntoIterator<Item = &'a TxSample>) {
        for s in samples {
            self.observe(s);
        }
    }

    /// Exponentially ages every weight by `factor` (0..=1), so the graph
    /// tracks the *current* phase of the workload instead of its whole
    /// history. Weights decayed to zero are dropped.
    pub fn decay(&mut self, factor: f64) {
        let f = factor.clamp(0.0, 1.0);
        let scale_u64 = |v: &mut u64| *v = (*v as f64 * f) as u64;
        self.nodes.retain(|_, l| {
            scale_u64(&mut l.reads);
            scale_u64(&mut l.writes);
            scale_u64(&mut l.txns);
            l.txns > 0 || l.reads > 0 || l.writes > 0
        });
        self.edges.retain(|_, w| {
            scale_u64(w);
            *w > 0
        });
        self.span_edges.retain(|_, w| {
            scale_u64(w);
            *w > 0
        });
        for agg in self.parts.values_mut() {
            scale_u64(&mut agg.samples);
            scale_u64(&mut agg.spanning);
        }
        self.samples = (self.samples as f64 * f) as u64;
    }

    /// Drops all observations for `part` (called after a repartition
    /// executed: the old observations describe a partition shape that no
    /// longer exists).
    pub fn forget_partition(&mut self, part: PartitionId) {
        self.nodes.retain(|n, _| n.0 != part);
        self.edges.retain(|(a, b), _| a.0 != part && b.0 != part);
        self.span_edges.retain(|(a, b), _| *a != part && *b != part);
        self.parts.remove(&part);
    }

    /// The affinity components of one partition: buckets joined by strong
    /// edges, as `(members, write_load)` lists sorted hottest-first.
    fn components_of(&self, part: PartitionId, cfg: &OnlineConfig) -> Vec<(Vec<u16>, u64)> {
        let buckets: Vec<u16> = self
            .nodes
            .keys()
            .filter(|n| n.0 == part)
            .map(|n| n.1)
            .collect();
        if buckets.is_empty() {
            return Vec::new();
        }
        let index: BTreeMap<u16, usize> =
            buckets.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut uf = UnionFind::new(buckets.len());
        let part_samples = self.parts.get(&part).map_or(0, |a| a.samples).max(1);
        let strong = (cfg.strong_edge_fraction * part_samples as f64).max(1.0) as u64;
        for (&(a, b), &w) in &self.edges {
            if a.0 == part && b.0 == part && w >= strong {
                uf.union(index[&a.1], index[&b.1]);
            }
        }
        let mut comps: BTreeMap<usize, (Vec<u16>, u64)> = BTreeMap::new();
        for &b in &buckets {
            let root = uf.find(index[&b]);
            let entry = comps.entry(root).or_default();
            entry.0.push(b);
            entry.1 += self.nodes[&(part, b)].writes;
        }
        let mut out: Vec<(Vec<u16>, u64)> = comps.into_values().collect();
        out.sort_by_key(|c| core::cmp::Reverse(c.1));
        out
    }

    /// Computes actionable proposals given per-partition statistics deltas
    /// for the same observation window (commits/aborts attribute conflict
    /// pressure the sampled graph cannot see on its own).
    ///
    /// Without partition metadata, resize proposals are suppressed (the
    /// analyzer cannot size a table it cannot see); use
    /// [`OnlineAnalyzer::proposals_with_meta`] for the full set.
    pub fn proposals(
        &self,
        stats: &BTreeMap<PartitionId, StatCounters>,
        cfg: &OnlineConfig,
    ) -> Vec<Proposal> {
        self.proposals_with_meta(stats, &BTreeMap::new(), cfg)
    }

    /// [`OnlineAnalyzer::proposals`] plus orec-table [`Proposal::Resize`]
    /// decisions, which need each partition's current table size
    /// (`meta`). Splits take precedence: a partition with an actionable
    /// hot set is fixed structurally, not by a bigger table.
    pub fn proposals_with_meta(
        &self,
        stats: &BTreeMap<PartitionId, StatCounters>,
        meta: &BTreeMap<PartitionId, PartitionMeta>,
        cfg: &OnlineConfig,
    ) -> Vec<Proposal> {
        let mut out = Vec::new();
        let abort_rate = |s: &StatCounters| {
            let attempts = s.commits + s.aborts();
            if attempts == 0 {
                0.0
            } else {
                s.aborts() as f64 / attempts as f64
            }
        };

        // Splits: hot-edge clustering per overloaded partition.
        for (&pid, agg) in &self.parts {
            if agg.samples < cfg.min_samples {
                continue;
            }
            let Some(s) = stats.get(&pid) else { continue };
            let ar = abort_rate(s);
            if ar < cfg.split_abort_rate {
                continue;
            }
            let comps = self.components_of(pid, cfg);
            let total_buckets: usize = comps.iter().map(|c| c.0.len()).sum();
            let total_writes: u64 = comps.iter().map(|c| c.1).sum();
            if total_writes == 0 || total_buckets < 2 {
                continue;
            }
            // Take every *clearly hot* component — per-bucket write load
            // at least `split_hot_factor` times the partition mean — so
            // one split captures the whole hot set (a partial grab leaves
            // hot residue behind and forces a second split). Components
            // are sorted hottest-first; never take everything (a split
            // must leave both sides populated).
            let mean = total_writes as f64 / total_buckets as f64;
            let mut hot: Vec<u16> = Vec::new();
            let mut hot_writes = 0u64;
            for (members, w) in &comps {
                let per_bucket = *w as f64 / members.len().max(1) as f64;
                if per_bucket < cfg.split_hot_factor * mean
                    || hot.len() + members.len() >= total_buckets
                {
                    continue;
                }
                hot.extend_from_slice(members);
                hot_writes += w;
            }
            let hot_share = hot_writes as f64 / total_writes as f64;
            if hot.is_empty()
                || hot_share < cfg.split_hot_share
                || hot.len() as f64 > cfg.split_max_bucket_fraction * total_buckets as f64
            {
                continue;
            }
            hot.sort_unstable();
            out.push(Proposal::Split {
                src: pid,
                buckets: hot,
                hot_share,
                abort_rate: ar,
            });
        }

        // Resizes: aliasing-bound partitions (no actionable hot set — the
        // split pass above stayed silent — but conflicts dominated by
        // false sharing in the orec table over a diffuse footprint).
        for (&pid, agg) in &self.parts {
            if agg.samples < cfg.min_samples
                || out
                    .iter()
                    .any(|p| matches!(p, Proposal::Split { src, .. } if *src == pid))
            {
                continue;
            }
            let (Some(s), Some(m)) = (stats.get(&pid), meta.get(&pid)) else {
                continue;
            };
            let ar = abort_rate(s);
            let classified = s.conflicts_true + s.conflicts_aliased;
            let aliased_share = s.aliased_share();
            // Footprint from the profiler's per-bucket counters: how many
            // distinct buckets the partition's sampled traffic spans.
            let footprint = self.nodes.keys().filter(|n| n.0 == pid).count();
            if ar < cfg.resize_abort_rate
                || classified < cfg.resize_min_classified
                || aliased_share < cfg.resize_min_aliased_share
                || footprint < cfg.resize_min_buckets
                || m.orec_count >= cfg.resize_max_orecs
            {
                continue;
            }
            let new_count =
                (m.orec_count.saturating_mul(cfg.resize_factor.max(2))).min(cfg.resize_max_orecs);
            out.push(Proposal::Resize {
                partition: pid,
                new_count,
                aliased_share,
                abort_rate: ar,
            });
        }

        // Merges: cold, co-accessed partition pairs.
        for (&(a, b), &w) in &self.span_edges {
            let (sa, sb) = match (self.parts.get(&a), self.parts.get(&b)) {
                (Some(x), Some(y)) => (x, y),
                _ => continue,
            };
            if sa.samples < cfg.min_samples || sb.samples < cfg.min_samples {
                continue;
            }
            let (Some(da), Some(db)) = (stats.get(&a), stats.get(&b)) else {
                continue;
            };
            if abort_rate(da) > cfg.merge_abort_rate || abort_rate(db) > cfg.merge_abort_rate {
                continue;
            }
            let span_share = w as f64 / sa.samples.max(sb.samples).max(1) as f64;
            if span_share < cfg.merge_span_fraction {
                continue;
            }
            // Dissolve the less busy side into the busier one.
            let (src, dst) = if da.commits <= db.commits {
                (a, b)
            } else {
                (b, a)
            };
            out.push(Proposal::Merge {
                src,
                dst,
                span_share,
            });
        }
        out
    }

    /// Expresses the observed affinity graph as a [`ProgramModel`]: every
    /// node becomes an allocation site (`"p<part>:b<bucket>"`), every
    /// strong edge an access site spanning its endpoints, every node also
    /// gets a singleton access site (so isolated buckets stay placeable).
    pub fn to_model(&self, cfg: &OnlineConfig) -> ProgramModel {
        let mut b = ModelBuilder::new("online-profile");
        let mut ids = BTreeMap::new();
        for (node, load) in &self.nodes {
            let id = b.alloc(format!("p{}:b{}", node.0 .0, node.1), "Bucket");
            ids.insert(*node, id);
            let kind = if load.writes > 0 {
                AccessKind::ReadWrite
            } else {
                AccessKind::Read
            };
            b.access(format!("touch_p{}_b{}", node.0 .0, node.1), kind, &[id]);
        }
        for (&(x, y), &w) in &self.edges {
            let part_samples = self.parts.get(&x.0).map_or(0, |a| a.samples).max(1);
            let strong = (cfg.strong_edge_fraction * part_samples as f64).max(1.0) as u64;
            if w >= strong {
                b.access(
                    format!("co_p{}b{}_p{}b{}", x.0 .0, x.1, y.0 .0, y.1),
                    AccessKind::ReadWrite,
                    &[ids[&x], ids[&y]],
                );
            }
        }
        b.build().expect("induced model is valid by construction")
    }

    /// Runs the static partitioner over [`OnlineAnalyzer::to_model`]: the
    /// finest placement that never separates strongly co-accessed buckets
    /// — the dynamic analogue of the paper's may-touch closure.
    pub fn plan(&self, cfg: &OnlineConfig) -> Result<PartitionPlan, ModelError> {
        partition(&self.to_model(cfg), Strategy::MayTouch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::profiler::{BucketTouch, SampleTouch};

    /// `(partition, [(bucket, reads, writes)])` shorthand for samples.
    type PartSpec<'a> = (u32, &'a [(u16, u32, u32)]);

    fn sample(parts: &[PartSpec<'_>], failed: u32) -> TxSample {
        TxSample {
            failed_attempts: failed,
            touched: parts
                .iter()
                .map(|(pid, buckets)| SampleTouch {
                    partition: PartitionId(*pid),
                    reads: buckets.iter().map(|b| b.1).sum(),
                    writes: buckets.iter().map(|b| b.2).sum(),
                    buckets: buckets
                        .iter()
                        .map(|&(bucket, reads, writes)| BucketTouch {
                            bucket,
                            reads,
                            writes,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    fn stats(commits: u64, aborts: u64) -> StatCounters {
        StatCounters {
            commits,
            aborts_wlock: aborts,
            ..Default::default()
        }
    }

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            min_samples: 8,
            ..Default::default()
        }
    }

    /// Hot pair (0,1) hammered with writes, cold buckets 10..20 read.
    fn hot_cold_analyzer() -> OnlineAnalyzer {
        let mut a = OnlineAnalyzer::new();
        for _ in 0..40 {
            a.observe(&sample(&[(0, &[(0, 1, 2), (1, 1, 2)])], 3));
        }
        for b in 10u16..20 {
            for _ in 0..4 {
                a.observe(&sample(&[(0, &[(b, 2, 0)])], 0));
            }
        }
        a
    }

    #[test]
    fn split_proposed_for_hot_contended_partition() {
        let a = hot_cold_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 60));
        let props = a.proposals(&st, &cfg());
        assert_eq!(props.len(), 1, "{props:?}");
        match &props[0] {
            Proposal::Split {
                src,
                buckets,
                hot_share,
                abort_rate,
            } => {
                assert_eq!(*src, PartitionId(0));
                assert_eq!(buckets, &[0, 1], "strong pair taken whole");
                assert!(*hot_share > 0.9, "hot share {hot_share}");
                assert!(*abort_rate > 0.3);
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn no_split_without_abort_pressure() {
        let a = hot_cold_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 1));
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    #[test]
    fn no_split_when_load_is_diffuse() {
        let mut a = OnlineAnalyzer::new();
        // Every bucket equally loaded, no co-access: nothing to isolate.
        for b in 0u16..16 {
            a.observe(&sample(&[(0, &[(b, 1, 1)])], 1));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 60));
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    fn aliasing_stats(commits: u64, aborts: u64, aliased: u64, true_c: u64) -> StatCounters {
        StatCounters {
            commits,
            aborts_wlock: aborts,
            conflicts_aliased: aliased,
            conflicts_true: true_c,
            ..Default::default()
        }
    }

    /// Diffuse traffic across 32 buckets: no hot set to split, plenty of
    /// footprint for a resize.
    fn diffuse_analyzer() -> OnlineAnalyzer {
        let mut a = OnlineAnalyzer::new();
        for b in 0u16..32 {
            for _ in 0..2 {
                a.observe(&sample(&[(0, &[(b, 2, 1)])], 1));
            }
        }
        a
    }

    fn meta_of(orecs: usize) -> BTreeMap<PartitionId, PartitionMeta> {
        let mut m = BTreeMap::new();
        m.insert(
            PartitionId(0),
            PartitionMeta {
                orec_count: orecs,
                ring_depth: 4,
            },
        );
        m
    }

    #[test]
    fn resize_proposed_for_aliasing_bound_partition() {
        let a = diffuse_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        let props = a.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert_eq!(props.len(), 1, "{props:?}");
        match &props[0] {
            Proposal::Resize {
                partition,
                new_count,
                aliased_share,
                abort_rate,
            } => {
                assert_eq!(*partition, PartitionId(0));
                assert_eq!(*new_count, 1024, "default factor-4 growth");
                assert!(*aliased_share > 0.9, "aliased share {aliased_share}");
                assert!(*abort_rate > 0.2);
            }
            other => panic!("expected resize, got {other:?}"),
        }
    }

    #[test]
    fn resize_needs_meta_and_caps_at_max() {
        let a = diffuse_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        // Without metadata the plain entry point stays split/merge-only.
        assert!(a.proposals(&st, &cfg()).is_empty());
        // At the cap, no further growth is proposed.
        let c = cfg();
        let capped = meta_of(c.resize_max_orecs);
        assert!(a.proposals_with_meta(&st, &capped, &c).is_empty());
        // Just below the cap, the proposal clamps to it.
        let below = meta_of(c.resize_max_orecs / 2);
        match &a.proposals_with_meta(&st, &below, &c)[..] {
            [Proposal::Resize { new_count, .. }] => assert_eq!(*new_count, c.resize_max_orecs),
            other => panic!("expected one resize, got {other:?}"),
        }
    }

    #[test]
    fn no_resize_when_conflicts_are_true_or_sparse() {
        let a = diffuse_analyzer();
        // Mostly true conflicts: a bigger table would not help.
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 2, 30));
        assert!(a.proposals_with_meta(&st, &meta_of(256), &cfg()).is_empty());
        // Too few classified conflicts to trust the share.
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 5, 0));
        assert!(a.proposals_with_meta(&st, &meta_of(256), &cfg()).is_empty());
        // Concentrated footprint (few buckets): the hot set, not the
        // table, is the problem — stay silent and let the split gates
        // decide.
        let mut narrow = OnlineAnalyzer::new();
        for _ in 0..64 {
            narrow.observe(&sample(&[(0, &[(0, 2, 1), (1, 2, 1)])], 1));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        let props = narrow.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert!(
            !props.iter().any(|p| matches!(p, Proposal::Resize { .. })),
            "{props:?}"
        );
    }

    #[test]
    fn split_takes_precedence_over_resize() {
        // Hot pair plus a wide cold footprint: both gates could fire; the
        // split must win and suppress the resize for that partition.
        let mut a = OnlineAnalyzer::new();
        for _ in 0..40 {
            a.observe(&sample(&[(0, &[(0, 1, 4), (1, 1, 4)])], 3));
        }
        for b in 10u16..30 {
            for _ in 0..2 {
                a.observe(&sample(&[(0, &[(b, 2, 0)])], 0));
            }
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 60, 40, 5));
        let props = a.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert!(
            props.iter().any(|p| matches!(p, Proposal::Split { .. })),
            "{props:?}"
        );
        assert!(
            !props.iter().any(|p| matches!(p, Proposal::Resize { .. })),
            "split suppresses resize: {props:?}"
        );
    }

    #[test]
    fn merge_proposed_for_cold_co_accessed_pair() {
        let mut a = OnlineAnalyzer::new();
        for _ in 0..20 {
            a.observe(&sample(&[(1, &[(0, 1, 0)]), (2, &[(0, 1, 1)])], 0));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(1), stats(50, 0));
        st.insert(PartitionId(2), stats(200, 1));
        let props = a.proposals(&st, &cfg());
        assert_eq!(
            props,
            vec![Proposal::Merge {
                src: PartitionId(1),
                dst: PartitionId(2),
                span_share: 1.0,
            }]
        );
    }

    #[test]
    fn plan_reuses_partitioner_affinity_closure() {
        let a = hot_cold_analyzer();
        let c = cfg();
        let model = a.to_model(&c);
        model.validate().unwrap();
        let plan = a.plan(&c).unwrap();
        // 12 observed buckets; the strong (0,1) pair collapses to one class.
        assert_eq!(plan.partition_count(), 11);
        let hot0 = model.alloc_by_name("p0:b0").unwrap().id;
        let hot1 = model.alloc_by_name("p0:b1").unwrap().id;
        assert_eq!(plan.class_of_alloc(hot0), plan.class_of_alloc(hot1));
    }

    #[test]
    fn decay_ages_and_drops_weights() {
        let mut a = hot_cold_analyzer();
        let before = a.samples();
        a.decay(0.5);
        assert_eq!(a.samples(), before / 2);
        a.decay(0.0);
        assert_eq!(a.samples(), 0);
        assert!(a.nodes().is_empty());
        let st = BTreeMap::new();
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    #[test]
    fn forget_partition_clears_its_state() {
        let mut a = OnlineAnalyzer::new();
        a.observe(&sample(&[(1, &[(0, 1, 1)]), (2, &[(3, 1, 1)])], 0));
        a.forget_partition(PartitionId(1));
        assert!(a.nodes().keys().all(|n| n.0 != PartitionId(1)));
        assert!(a.nodes().keys().any(|n| n.0 == PartitionId(2)));
    }
}
