//! Online repartitioning analysis: fold sampled runtime traces into an
//! affinity/conflict view and propose partition splits and merges.
//!
//! This is the dynamic counterpart of the static partitioner: where
//! [`partition`](crate::partitioner::partition()) closes may-touch sets the
//! *compiler* derived, the [`OnlineAnalyzer`] closes *observed* co-access
//! sets the sampled profiler (`partstm_core::profiler`) reports while the
//! program runs. Nodes of the graph are `(partition, address bucket)`
//! pairs; edges are weighted by how often two buckets were touched by the
//! same transaction (affinity) and annotated with write pressure
//! (conflict potential).
//!
//! Two outputs:
//!
//! * [`OnlineAnalyzer::proposals`] — actionable [`Proposal::Split`] /
//!   [`Proposal::Merge`] decisions, computed by an incremental union-find
//!   over *strong* affinity edges followed by a min-cut-style hot-edge
//!   splitter: strong edges are never cut (splitting co-accessed data
//!   would turn every transaction multi-partition), weak edges are, and
//!   the hottest write-heavy components are taken as the split set.
//! * [`OnlineAnalyzer::plan`] — the same affinity closure expressed as a
//!   [`PartitionPlan`] by routing an induced [`ProgramModel`] through the
//!   static partitioner ([`OnlineAnalyzer::to_model`]): every observed
//!   bucket becomes an allocation site, every strong edge an access site,
//!   so the emitted classes are exactly the units the repartitioner may
//!   place independently.

use std::collections::BTreeMap;

use partstm_core::profiler::TxSample;
use partstm_core::{PartitionId, StatCounters};

use crate::model::{AccessKind, ModelBuilder, ModelError, ProgramModel};
use crate::partitioner::{partition, PartitionPlan, Strategy};
use crate::unionfind::UnionFind;

/// A graph node: one address bucket of one partition.
pub type Node = (PartitionId, u16);

/// Per-sample cap on affinity-edge endpoints (bounds graph densification
/// to `O(MAX_EDGE_FANOUT²)` per sample).
const MAX_EDGE_FANOUT: usize = 8;

/// Load observed on one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Sampled reads that landed in the bucket.
    pub reads: u64,
    /// Sampled writes that landed in the bucket.
    pub writes: u64,
    /// Sampled transactions that touched the bucket.
    pub txns: u64,
}

/// Tunable thresholds of the online analysis.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Minimum samples accumulated on a partition before any proposal.
    pub min_samples: u64,
    /// An affinity edge is *strong* (never cut) when its weight is at
    /// least this fraction of the partition's sampled transactions.
    pub strong_edge_fraction: f64,
    /// Propose a split when the partition's abort rate is at least this.
    pub split_abort_rate: f64,
    /// A component is *hot* (worth isolating) when its per-bucket write
    /// load is at least this multiple of the partition's mean per-bucket
    /// write load.
    pub split_hot_factor: f64,
    /// ... and the hot components together carry at least this fraction
    /// of the partition's sampled write load ...
    pub split_hot_share: f64,
    /// ... while spanning at most this fraction of its observed buckets
    /// (a diffuse partition has no hot set worth isolating).
    pub split_max_bucket_fraction: f64,
    /// Propose merging two partitions when both abort below this rate and
    /// they are co-accessed (see `merge_span_fraction`).
    pub merge_abort_rate: f64,
    /// Fraction of either partition's sampled transactions that must span
    /// both partitions to propose a merge (cross-partition transactions
    /// pay per-partition bookkeeping twice; merging removes it).
    pub merge_span_fraction: f64,
    /// Propose an orec-table resize when the partition's abort rate is at
    /// least this (lower than the split gate: growing a table is far
    /// cheaper than a migration, so it may fire earlier).
    pub resize_abort_rate: f64,
    /// ... and at least this fraction of its *classified* conflicts were
    /// aliased (false) conflicts — the engine-side telemetry
    /// (`StatCounters::{conflicts_true, conflicts_aliased}`) that
    /// distinguishes "table too small" from genuine data contention.
    pub resize_min_aliased_share: f64,
    /// Minimum classified conflicts in the window before the aliased
    /// share is trusted (a handful of aborts is noise).
    pub resize_min_classified: u64,
    /// ... and the partition's sampled footprint spans at least this many
    /// profile buckets. A diffuse footprint plus a high aliased share
    /// means unrelated data is hashing onto shared orecs — more orecs fix
    /// it; a *concentrated* footprint is a hot set, which the split path
    /// handles structurally (splits always take precedence).
    pub resize_min_buckets: usize,
    /// Growth factor per executed resize (the table size ladder).
    pub resize_factor: usize,
    /// Largest table the analyzer will propose (further aliasing pressure
    /// past this is better answered by a split).
    pub resize_max_orecs: usize,
    /// A hot set this small (in profile buckets) is a *celebrity* set:
    /// propose tearing just those slots out of their collections
    /// ([`Proposal::Tear`]) instead of splitting whole structures. Wider
    /// hot sets fall back to [`Proposal::Split`].
    pub tear_max_buckets: usize,
    /// ... provided the set carries at least this fraction of the
    /// partition's sampled write load (a tear moves few nodes, so it must
    /// capture the bulk of the heat to pay for its window).
    pub tear_hot_share: f64,
    /// Heal a torn partition back into its origin once its share of the
    /// combined (torn + origin) sampled *write* load drops below this.
    /// Write heat is what tears; write silence is what heals — counting
    /// reads would let a scan-heavy origin swamp the ratio and heal a
    /// subset whose skew is still live.
    pub heal_max_share: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            min_samples: 64,
            strong_edge_fraction: 0.40,
            split_abort_rate: 0.10,
            split_hot_factor: 4.0,
            split_hot_share: 0.50,
            split_max_bucket_fraction: 0.25,
            merge_abort_rate: 0.02,
            merge_span_fraction: 0.50,
            resize_abort_rate: 0.05,
            resize_min_aliased_share: 0.50,
            resize_min_classified: 16,
            resize_min_buckets: 16,
            resize_factor: 4,
            resize_max_orecs: 1 << 16,
            tear_max_buckets: 12,
            tear_hot_share: 0.55,
            heal_max_share: 0.10,
        }
    }
}

/// One actionable repartitioning decision.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// Move `buckets` of `src` into a fresh partition.
    Split {
        /// The overloaded partition.
        src: PartitionId,
        /// The hot bucket set to take (sorted).
        buckets: Vec<u16>,
        /// Fraction of `src`'s sampled write load the set carries.
        hot_share: f64,
        /// Abort rate that triggered the proposal.
        abort_rate: f64,
    },
    /// Fold `src` into `dst` (both cold, frequently co-accessed).
    Merge {
        /// Partition to dissolve (the smaller commit count of the pair).
        src: PartitionId,
        /// Partition to receive `src`'s variables.
        dst: PartitionId,
        /// Fraction of the busier partition's samples spanning both.
        span_share: f64,
    },
    /// Grow `partition`'s orec table in place to `new_count` records: its
    /// conflicts are dominated by *aliasing* (unrelated addresses hashing
    /// onto shared orecs) over a diffuse footprint — a finer table removes
    /// the false conflicts without moving any data.
    Resize {
        /// The aliasing-bound partition.
        partition: PartitionId,
        /// Proposed table size (records; the runtime rounds/clamps).
        new_count: usize,
        /// Fraction of classified conflicts that were aliased.
        aliased_share: f64,
        /// Abort rate that triggered the proposal.
        abort_rate: f64,
    },
    /// Tear the hot slots of `buckets` out of `src`'s collections into
    /// their own partition: the hot set is narrow enough (celebrity keys)
    /// that moving whole structures would drag thousands of cold nodes
    /// along. The controller maps the buckets back to live arena slots
    /// through its directory's reverse map.
    Tear {
        /// The overloaded partition.
        src: PartitionId,
        /// The celebrity bucket set to tear (sorted).
        buckets: Vec<u16>,
        /// Fraction of `src`'s sampled write load the set carries.
        hot_share: f64,
        /// Abort rate that triggered the proposal.
        abort_rate: f64,
    },
    /// Re-merge a torn slot subset into its origin partition: the skew
    /// passed, and keeping the extra partition only costs bookkeeping.
    Heal {
        /// The torn partition to dissolve.
        src: PartitionId,
        /// Its origin (where the slots came from).
        dst: PartitionId,
        /// `src`'s share of the combined torn + origin sampled write
        /// load.
        load_share: f64,
    },
}

/// Runtime facts about one partition the sampled graph cannot see; the
/// controller feeds these alongside the statistics window so proposals can
/// reference current capacities.
#[derive(Debug, Clone, Copy)]
pub struct PartitionMeta {
    /// Current orec-table size (records).
    pub orec_count: usize,
    /// Current version-ring depth (committed versions kept per orec for
    /// the snapshot read path). Telemetry for now: proposals do not yet
    /// resize rings, but reports carry the depth so an operator can
    /// correlate `ring_overflow_pushes` pressure with the configured
    /// history capacity.
    pub ring_depth: usize,
    /// `Some(origin)` when this partition holds a torn slot subset. Torn
    /// partitions are *terminal* for structural proposals — they only ever
    /// heal back into their origin (no split/tear/resize/merge), which
    /// keeps the tear/heal cycle from compounding.
    pub torn_from: Option<PartitionId>,
}

/// Per-partition aggregate the analyzer keeps alongside the graph.
#[derive(Debug, Clone, Copy, Default)]
struct PartAgg {
    samples: u64,
    spanning: u64,
}

/// Incremental affinity/conflict analysis over profiler samples.
#[derive(Debug, Default)]
pub struct OnlineAnalyzer {
    nodes: BTreeMap<Node, NodeLoad>,
    /// Co-access weights, keyed with the smaller node first.
    edges: BTreeMap<(Node, Node), u64>,
    /// Cross-partition co-access weights (partition pairs).
    span_edges: BTreeMap<(PartitionId, PartitionId), u64>,
    parts: BTreeMap<PartitionId, PartAgg>,
    samples: u64,
}

impl OnlineAnalyzer {
    /// An empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Observed nodes with their loads (for reports).
    pub fn nodes(&self) -> &BTreeMap<Node, NodeLoad> {
        &self.nodes
    }

    /// Folds one sampled transaction into the graph.
    pub fn observe(&mut self, sample: &TxSample) {
        self.samples += 1;
        let mut written_nodes: Vec<Node> = Vec::new();
        for t in &sample.touched {
            let agg = self.parts.entry(t.partition).or_default();
            agg.samples += 1;
            if sample.spans_partitions() {
                agg.spanning += 1;
            }
            for b in &t.buckets {
                let node = (t.partition, b.bucket);
                let load = self.nodes.entry(node).or_default();
                load.reads += b.reads as u64;
                load.writes += b.writes as u64;
                load.txns += 1;
                if b.writes > 0 {
                    written_nodes.push(node);
                }
            }
        }
        // Span edges: which partition pairs this transaction straddled
        // (touched-partition granularity; cheap, feeds merge decisions).
        for i in 0..sample.touched.len() {
            for j in (i + 1)..sample.touched.len() {
                let (a, b) = (sample.touched[i].partition, sample.touched[j].partition);
                let key = if a < b { (a, b) } else { (b, a) };
                *self.span_edges.entry(key).or_insert(0) += 1;
            }
        }
        // Affinity edges join buckets *written* together — the co-update
        // sets a split must not separate. Read-only fan-in (wide scans)
        // deliberately creates no edges: it would densify the graph
        // quadratically (a 32-read scan is ~500 pairs) and a split never
        // harms a read-only transaction beyond one extra partition view.
        written_nodes.sort_unstable();
        written_nodes.dedup();
        if written_nodes.len() > MAX_EDGE_FANOUT {
            // Cap fan-out by stride-sampling across the sorted set: a
            // plain truncate would deterministically starve high-keyed
            // buckets of affinity edges.
            let stride = written_nodes.len().div_ceil(MAX_EDGE_FANOUT);
            let offset = (self.samples as usize) % stride;
            written_nodes = written_nodes
                .into_iter()
                .skip(offset)
                .step_by(stride)
                .collect();
        }
        for i in 0..written_nodes.len() {
            for j in (i + 1)..written_nodes.len() {
                let (a, b) = (written_nodes[i], written_nodes[j]);
                *self.edges.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Folds a batch of samples.
    pub fn observe_all<'a>(&mut self, samples: impl IntoIterator<Item = &'a TxSample>) {
        for s in samples {
            self.observe(s);
        }
    }

    /// Exponentially ages every weight by `factor` (0..=1), so the graph
    /// tracks the *current* phase of the workload instead of its whole
    /// history. Weights decayed to zero are dropped.
    pub fn decay(&mut self, factor: f64) {
        let f = factor.clamp(0.0, 1.0);
        let scale_u64 = |v: &mut u64| *v = (*v as f64 * f) as u64;
        self.nodes.retain(|_, l| {
            scale_u64(&mut l.reads);
            scale_u64(&mut l.writes);
            scale_u64(&mut l.txns);
            l.txns > 0 || l.reads > 0 || l.writes > 0
        });
        self.edges.retain(|_, w| {
            scale_u64(w);
            *w > 0
        });
        self.span_edges.retain(|_, w| {
            scale_u64(w);
            *w > 0
        });
        for agg in self.parts.values_mut() {
            scale_u64(&mut agg.samples);
            scale_u64(&mut agg.spanning);
        }
        self.samples = (self.samples as f64 * f) as u64;
    }

    /// Drops all observations for `part` (called after a repartition
    /// executed: the old observations describe a partition shape that no
    /// longer exists).
    pub fn forget_partition(&mut self, part: PartitionId) {
        self.nodes.retain(|n, _| n.0 != part);
        self.edges.retain(|(a, b), _| a.0 != part && b.0 != part);
        self.span_edges.retain(|(a, b), _| *a != part && *b != part);
        self.parts.remove(&part);
    }

    /// The affinity components of one partition: buckets joined by strong
    /// edges, as `(members, write_load)` lists sorted hottest-first.
    fn components_of(&self, part: PartitionId, cfg: &OnlineConfig) -> Vec<(Vec<u16>, u64)> {
        let buckets: Vec<u16> = self
            .nodes
            .keys()
            .filter(|n| n.0 == part)
            .map(|n| n.1)
            .collect();
        if buckets.is_empty() {
            return Vec::new();
        }
        let index: BTreeMap<u16, usize> =
            buckets.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut uf = UnionFind::new(buckets.len());
        let part_samples = self.parts.get(&part).map_or(0, |a| a.samples).max(1);
        let strong = (cfg.strong_edge_fraction * part_samples as f64).max(1.0) as u64;
        for (&(a, b), &w) in &self.edges {
            if a.0 == part && b.0 == part && w >= strong {
                uf.union(index[&a.1], index[&b.1]);
            }
        }
        let mut comps: BTreeMap<usize, (Vec<u16>, u64)> = BTreeMap::new();
        for &b in &buckets {
            let root = uf.find(index[&b]);
            let entry = comps.entry(root).or_default();
            entry.0.push(b);
            entry.1 += self.nodes[&(part, b)].writes;
        }
        let mut out: Vec<(Vec<u16>, u64)> = comps.into_values().collect();
        out.sort_by_key(|c| core::cmp::Reverse(c.1));
        out
    }

    /// Computes actionable proposals given per-partition statistics deltas
    /// for the same observation window (commits/aborts attribute conflict
    /// pressure the sampled graph cannot see on its own).
    ///
    /// Without partition metadata, resize proposals are suppressed (the
    /// analyzer cannot size a table it cannot see); use
    /// [`OnlineAnalyzer::proposals_with_meta`] for the full set.
    pub fn proposals(
        &self,
        stats: &BTreeMap<PartitionId, StatCounters>,
        cfg: &OnlineConfig,
    ) -> Vec<Proposal> {
        self.proposals_with_meta(stats, &BTreeMap::new(), cfg)
    }

    /// [`OnlineAnalyzer::proposals`] plus the metadata-dependent
    /// decisions: orec-table [`Proposal::Resize`]s (which need each
    /// partition's current table size), celebrity-key [`Proposal::Tear`]s
    /// (narrow hot sets), and [`Proposal::Heal`]s for torn partitions
    /// (`meta.torn_from`) whose skew has passed. Splits/tears take
    /// precedence: a partition with an actionable hot set is fixed
    /// structurally, not by a bigger table.
    pub fn proposals_with_meta(
        &self,
        stats: &BTreeMap<PartitionId, StatCounters>,
        meta: &BTreeMap<PartitionId, PartitionMeta>,
        cfg: &OnlineConfig,
    ) -> Vec<Proposal> {
        let mut out = Vec::new();
        let abort_rate = |s: &StatCounters| {
            let attempts = s.commits + s.aborts();
            if attempts == 0 {
                0.0
            } else {
                s.aborts() as f64 / attempts as f64
            }
        };

        let torn_from = |pid: &PartitionId| meta.get(pid).and_then(|m| m.torn_from);

        // Splits / tears: hot-edge clustering per overloaded partition.
        for (&pid, agg) in &self.parts {
            if agg.samples < cfg.min_samples || torn_from(&pid).is_some() {
                continue;
            }
            let Some(s) = stats.get(&pid) else { continue };
            let ar = abort_rate(s);
            if ar < cfg.split_abort_rate {
                continue;
            }
            let comps = self.components_of(pid, cfg);
            let total_buckets: usize = comps.iter().map(|c| c.0.len()).sum();
            let total_writes: u64 = comps.iter().map(|c| c.1).sum();
            if total_writes == 0 || total_buckets < 2 {
                continue;
            }
            // Take every *clearly hot* component — per-bucket write load
            // at least `split_hot_factor` times the partition mean — so
            // one split captures the whole hot set (a partial grab leaves
            // hot residue behind and forces a second split). Components
            // are sorted hottest-first; never take everything (a split
            // must leave both sides populated).
            let mean = total_writes as f64 / total_buckets as f64;
            let mut hot: Vec<u16> = Vec::new();
            let mut hot_writes = 0u64;
            for (members, w) in &comps {
                let per_bucket = *w as f64 / members.len().max(1) as f64;
                if per_bucket < cfg.split_hot_factor * mean
                    || hot.len() + members.len() >= total_buckets
                {
                    continue;
                }
                hot.extend_from_slice(members);
                hot_writes += w;
            }
            let hot_share = hot_writes as f64 / total_writes as f64;
            if hot.is_empty()
                || hot_share < cfg.split_hot_share
                || hot.len() as f64 > cfg.split_max_bucket_fraction * total_buckets as f64
            {
                continue;
            }
            hot.sort_unstable();
            // A narrow hot set carrying the bulk of the write load is a
            // celebrity-key signature: tear just those slots out of their
            // collections instead of splitting whole structures.
            if hot.len() <= cfg.tear_max_buckets && hot_share >= cfg.tear_hot_share {
                out.push(Proposal::Tear {
                    src: pid,
                    buckets: hot,
                    hot_share,
                    abort_rate: ar,
                });
            } else {
                out.push(Proposal::Split {
                    src: pid,
                    buckets: hot,
                    hot_share,
                    abort_rate: ar,
                });
            }
        }

        // Resizes: aliasing-bound partitions (no actionable hot set — the
        // split pass above stayed silent — but conflicts dominated by
        // false sharing in the orec table over a diffuse footprint).
        for (&pid, agg) in &self.parts {
            if agg.samples < cfg.min_samples
                || torn_from(&pid).is_some()
                || out.iter().any(|p| {
                    matches!(p, Proposal::Split { src, .. } | Proposal::Tear { src, .. }
                        if *src == pid)
                })
            {
                continue;
            }
            let (Some(s), Some(m)) = (stats.get(&pid), meta.get(&pid)) else {
                continue;
            };
            let ar = abort_rate(s);
            let classified = s.conflicts_true + s.conflicts_aliased;
            let aliased_share = s.aliased_share();
            // Footprint from the profiler's per-bucket counters: how many
            // distinct buckets the partition's sampled traffic spans.
            let footprint = self.nodes.keys().filter(|n| n.0 == pid).count();
            if ar < cfg.resize_abort_rate
                || classified < cfg.resize_min_classified
                || aliased_share < cfg.resize_min_aliased_share
                || footprint < cfg.resize_min_buckets
                || m.orec_count >= cfg.resize_max_orecs
            {
                continue;
            }
            let new_count =
                (m.orec_count.saturating_mul(cfg.resize_factor.max(2))).min(cfg.resize_max_orecs);
            out.push(Proposal::Resize {
                partition: pid,
                new_count,
                aliased_share,
                abort_rate: ar,
            });
        }

        // Heals: a torn partition whose share of the combined torn +
        // origin *write* load has collapsed goes home (write heat is the
        // tear criterion, so write silence is the heal signal; reads
        // would let a scan-heavy origin drown a still-live skew). No
        // per-partition sample floor on the torn side — a skew that
        // passed leaves the torn slots with *zero* traffic, which is
        // exactly the heal signal — but the analyzer as a whole must
        // have seen a meaningful window (traffic is flowing somewhere)
        // before trusting the silence.
        for (&pid, m) in meta {
            let Some(origin) = m.torn_from else { continue };
            if self.samples < cfg.min_samples {
                continue;
            }
            let load_of = |p: PartitionId| {
                self.nodes
                    .iter()
                    .filter(|(n, _)| n.0 == p)
                    .map(|(_, l)| l.writes)
                    .sum::<u64>()
            };
            let torn = load_of(pid);
            let total = torn + load_of(origin);
            let load_share = if total == 0 {
                0.0
            } else {
                torn as f64 / total as f64
            };
            if load_share < cfg.heal_max_share {
                out.push(Proposal::Heal {
                    src: pid,
                    dst: origin,
                    load_share,
                });
            }
        }

        // Merges: cold, co-accessed partition pairs. Torn partitions are
        // excluded — the heal pass owns their re-merge (into their origin,
        // slot-aware), and a generic merge would strand the directory's
        // torn bookkeeping.
        for (&(a, b), &w) in &self.span_edges {
            if torn_from(&a).is_some() || torn_from(&b).is_some() {
                continue;
            }
            let (sa, sb) = match (self.parts.get(&a), self.parts.get(&b)) {
                (Some(x), Some(y)) => (x, y),
                _ => continue,
            };
            if sa.samples < cfg.min_samples || sb.samples < cfg.min_samples {
                continue;
            }
            let (Some(da), Some(db)) = (stats.get(&a), stats.get(&b)) else {
                continue;
            };
            if abort_rate(da) > cfg.merge_abort_rate || abort_rate(db) > cfg.merge_abort_rate {
                continue;
            }
            let span_share = w as f64 / sa.samples.max(sb.samples).max(1) as f64;
            if span_share < cfg.merge_span_fraction {
                continue;
            }
            // Dissolve the less busy side into the busier one.
            let (src, dst) = if da.commits <= db.commits {
                (a, b)
            } else {
                (b, a)
            };
            out.push(Proposal::Merge {
                src,
                dst,
                span_share,
            });
        }
        out
    }

    /// Expresses the observed affinity graph as a [`ProgramModel`]: every
    /// node becomes an allocation site (`"p<part>:b<bucket>"`), every
    /// strong edge an access site spanning its endpoints, every node also
    /// gets a singleton access site (so isolated buckets stay placeable).
    pub fn to_model(&self, cfg: &OnlineConfig) -> ProgramModel {
        let mut b = ModelBuilder::new("online-profile");
        let mut ids = BTreeMap::new();
        for (node, load) in &self.nodes {
            let id = b.alloc(format!("p{}:b{}", node.0 .0, node.1), "Bucket");
            ids.insert(*node, id);
            let kind = if load.writes > 0 {
                AccessKind::ReadWrite
            } else {
                AccessKind::Read
            };
            b.access(format!("touch_p{}_b{}", node.0 .0, node.1), kind, &[id]);
        }
        for (&(x, y), &w) in &self.edges {
            let part_samples = self.parts.get(&x.0).map_or(0, |a| a.samples).max(1);
            let strong = (cfg.strong_edge_fraction * part_samples as f64).max(1.0) as u64;
            if w >= strong {
                b.access(
                    format!("co_p{}b{}_p{}b{}", x.0 .0, x.1, y.0 .0, y.1),
                    AccessKind::ReadWrite,
                    &[ids[&x], ids[&y]],
                );
            }
        }
        b.build().expect("induced model is valid by construction")
    }

    /// Runs the static partitioner over [`OnlineAnalyzer::to_model`]: the
    /// finest placement that never separates strongly co-accessed buckets
    /// — the dynamic analogue of the paper's may-touch closure.
    pub fn plan(&self, cfg: &OnlineConfig) -> Result<PartitionPlan, ModelError> {
        partition(&self.to_model(cfg), Strategy::MayTouch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::profiler::{BucketTouch, SampleTouch};

    /// `(partition, [(bucket, reads, writes)])` shorthand for samples.
    type PartSpec<'a> = (u32, &'a [(u16, u32, u32)]);

    fn sample(parts: &[PartSpec<'_>], failed: u32) -> TxSample {
        TxSample {
            failed_attempts: failed,
            touched: parts
                .iter()
                .map(|(pid, buckets)| SampleTouch {
                    partition: PartitionId(*pid),
                    reads: buckets.iter().map(|b| b.1).sum(),
                    writes: buckets.iter().map(|b| b.2).sum(),
                    buckets: buckets
                        .iter()
                        .map(|&(bucket, reads, writes)| BucketTouch {
                            bucket,
                            reads,
                            writes,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    fn stats(commits: u64, aborts: u64) -> StatCounters {
        StatCounters {
            commits,
            aborts_wlock: aborts,
            ..Default::default()
        }
    }

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            min_samples: 8,
            ..Default::default()
        }
    }

    /// Hot pair (0,1) hammered with writes, cold buckets 10..20 read.
    fn hot_cold_analyzer() -> OnlineAnalyzer {
        let mut a = OnlineAnalyzer::new();
        for _ in 0..40 {
            a.observe(&sample(&[(0, &[(0, 1, 2), (1, 1, 2)])], 3));
        }
        for b in 10u16..20 {
            for _ in 0..4 {
                a.observe(&sample(&[(0, &[(b, 2, 0)])], 0));
            }
        }
        a
    }

    #[test]
    fn tear_proposed_for_celebrity_hot_set() {
        // Two buckets carrying >90% of the write load: narrow enough for
        // a slot-subset tear, not a whole-structure split.
        let a = hot_cold_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 60));
        let props = a.proposals(&st, &cfg());
        assert_eq!(props.len(), 1, "{props:?}");
        match &props[0] {
            Proposal::Tear {
                src,
                buckets,
                hot_share,
                abort_rate,
            } => {
                assert_eq!(*src, PartitionId(0));
                assert_eq!(buckets, &[0, 1], "strong pair taken whole");
                assert!(*hot_share > 0.9, "hot share {hot_share}");
                assert!(*abort_rate > 0.3);
            }
            other => panic!("expected tear, got {other:?}"),
        }
    }

    #[test]
    fn wide_hot_set_still_splits() {
        // 16 individually hammered hot buckets over 56 cold ones: passes
        // every split gate but is far too wide for a celebrity tear.
        let mut a = OnlineAnalyzer::new();
        for b in 0u16..16 {
            for _ in 0..6 {
                a.observe(&sample(&[(0, &[(b, 1, 4)])], 2));
            }
        }
        for b in 100u16..156 {
            a.observe(&sample(&[(0, &[(b, 2, 0)])], 0));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 60));
        let props = a.proposals(&st, &cfg());
        match &props[..] {
            [Proposal::Split { buckets, .. }] => {
                assert_eq!(buckets.len(), 16, "whole hot set taken: {buckets:?}");
            }
            other => panic!("expected one split, got {other:?}"),
        }
    }

    #[test]
    fn no_split_without_abort_pressure() {
        let a = hot_cold_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 1));
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    #[test]
    fn no_split_when_load_is_diffuse() {
        let mut a = OnlineAnalyzer::new();
        // Every bucket equally loaded, no co-access: nothing to isolate.
        for b in 0u16..16 {
            a.observe(&sample(&[(0, &[(b, 1, 1)])], 1));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 60));
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    fn aliasing_stats(commits: u64, aborts: u64, aliased: u64, true_c: u64) -> StatCounters {
        StatCounters {
            commits,
            aborts_wlock: aborts,
            conflicts_aliased: aliased,
            conflicts_true: true_c,
            ..Default::default()
        }
    }

    /// Diffuse traffic across 32 buckets: no hot set to split, plenty of
    /// footprint for a resize.
    fn diffuse_analyzer() -> OnlineAnalyzer {
        let mut a = OnlineAnalyzer::new();
        for b in 0u16..32 {
            for _ in 0..2 {
                a.observe(&sample(&[(0, &[(b, 2, 1)])], 1));
            }
        }
        a
    }

    fn meta_of(orecs: usize) -> BTreeMap<PartitionId, PartitionMeta> {
        let mut m = BTreeMap::new();
        m.insert(
            PartitionId(0),
            PartitionMeta {
                orec_count: orecs,
                ring_depth: 4,
                torn_from: None,
            },
        );
        m
    }

    #[test]
    fn resize_proposed_for_aliasing_bound_partition() {
        let a = diffuse_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        let props = a.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert_eq!(props.len(), 1, "{props:?}");
        match &props[0] {
            Proposal::Resize {
                partition,
                new_count,
                aliased_share,
                abort_rate,
            } => {
                assert_eq!(*partition, PartitionId(0));
                assert_eq!(*new_count, 1024, "default factor-4 growth");
                assert!(*aliased_share > 0.9, "aliased share {aliased_share}");
                assert!(*abort_rate > 0.2);
            }
            other => panic!("expected resize, got {other:?}"),
        }
    }

    #[test]
    fn resize_needs_meta_and_caps_at_max() {
        let a = diffuse_analyzer();
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        // Without metadata the plain entry point stays split/merge-only.
        assert!(a.proposals(&st, &cfg()).is_empty());
        // At the cap, no further growth is proposed.
        let c = cfg();
        let capped = meta_of(c.resize_max_orecs);
        assert!(a.proposals_with_meta(&st, &capped, &c).is_empty());
        // Just below the cap, the proposal clamps to it.
        let below = meta_of(c.resize_max_orecs / 2);
        match &a.proposals_with_meta(&st, &below, &c)[..] {
            [Proposal::Resize { new_count, .. }] => assert_eq!(*new_count, c.resize_max_orecs),
            other => panic!("expected one resize, got {other:?}"),
        }
    }

    #[test]
    fn no_resize_when_conflicts_are_true_or_sparse() {
        let a = diffuse_analyzer();
        // Mostly true conflicts: a bigger table would not help.
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 2, 30));
        assert!(a.proposals_with_meta(&st, &meta_of(256), &cfg()).is_empty());
        // Too few classified conflicts to trust the share.
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 5, 0));
        assert!(a.proposals_with_meta(&st, &meta_of(256), &cfg()).is_empty());
        // Concentrated footprint (few buckets): the hot set, not the
        // table, is the problem — stay silent and let the split gates
        // decide.
        let mut narrow = OnlineAnalyzer::new();
        for _ in 0..64 {
            narrow.observe(&sample(&[(0, &[(0, 2, 1), (1, 2, 1)])], 1));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 40, 30, 2));
        let props = narrow.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert!(
            !props.iter().any(|p| matches!(p, Proposal::Resize { .. })),
            "{props:?}"
        );
    }

    #[test]
    fn hot_set_takes_precedence_over_resize() {
        // Hot pair plus a wide cold footprint: both gates could fire; the
        // hot-set proposal (a tear — the pair is celebrity-narrow) must
        // win and suppress the resize for that partition.
        let mut a = OnlineAnalyzer::new();
        for _ in 0..40 {
            a.observe(&sample(&[(0, &[(0, 1, 4), (1, 1, 4)])], 3));
        }
        for b in 10u16..30 {
            for _ in 0..2 {
                a.observe(&sample(&[(0, &[(b, 2, 0)])], 0));
            }
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), aliasing_stats(100, 60, 40, 5));
        let props = a.proposals_with_meta(&st, &meta_of(256), &cfg());
        assert!(
            props.iter().any(|p| matches!(p, Proposal::Tear { .. })),
            "{props:?}"
        );
        assert!(
            !props.iter().any(|p| matches!(p, Proposal::Resize { .. })),
            "tear suppresses resize: {props:?}"
        );
    }

    /// Meta for origin partition 0 plus partition 1 torn from it.
    fn torn_meta() -> BTreeMap<PartitionId, PartitionMeta> {
        let mut m = meta_of(256);
        m.insert(
            PartitionId(1),
            PartitionMeta {
                orec_count: 256,
                ring_depth: 4,
                torn_from: Some(PartitionId(0)),
            },
        );
        m
    }

    #[test]
    fn heal_proposed_when_torn_share_collapses() {
        // All traffic back on the origin; the torn partition is silent.
        let mut a = OnlineAnalyzer::new();
        for b in 0u16..8 {
            for _ in 0..4 {
                a.observe(&sample(&[(0, &[(b, 2, 1)])], 0));
            }
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(100, 1));
        let props = a.proposals_with_meta(&st, &torn_meta(), &cfg());
        assert_eq!(
            props,
            vec![Proposal::Heal {
                src: PartitionId(1),
                dst: PartitionId(0),
                load_share: 0.0,
            }]
        );
    }

    #[test]
    fn no_heal_while_torn_partition_carries_the_load() {
        // The skew is still on: the torn partition carries the traffic,
        // and despite abort pressure it must be neither healed nor
        // split/torn/resized (torn partitions are terminal).
        let mut a = OnlineAnalyzer::new();
        for _ in 0..40 {
            a.observe(&sample(&[(1, &[(0, 1, 4), (1, 1, 4)])], 3));
        }
        for b in 10u16..30 {
            a.observe(&sample(&[(1, &[(b, 2, 0)])], 0));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(10, 0));
        st.insert(PartitionId(1), aliasing_stats(100, 60, 40, 5));
        let props = a.proposals_with_meta(&st, &torn_meta(), &cfg());
        assert!(props.is_empty(), "{props:?}");
    }

    #[test]
    fn torn_partition_is_excluded_from_merges() {
        // Cold co-accessed pair that would merge — but one side is torn,
        // so only the heal pass may touch it (and the spanning load keeps
        // its share above the heal gate).
        let mut a = OnlineAnalyzer::new();
        for _ in 0..20 {
            a.observe(&sample(&[(0, &[(0, 1, 0)]), (1, &[(0, 1, 1)])], 0));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(0), stats(200, 1));
        st.insert(PartitionId(1), stats(50, 0));
        assert!(
            !a.proposals(&st, &cfg()).is_empty(),
            "sanity: untorn pair merges"
        );
        let props = a.proposals_with_meta(&st, &torn_meta(), &cfg());
        assert!(props.is_empty(), "{props:?}");
    }

    #[test]
    fn merge_proposed_for_cold_co_accessed_pair() {
        let mut a = OnlineAnalyzer::new();
        for _ in 0..20 {
            a.observe(&sample(&[(1, &[(0, 1, 0)]), (2, &[(0, 1, 1)])], 0));
        }
        let mut st = BTreeMap::new();
        st.insert(PartitionId(1), stats(50, 0));
        st.insert(PartitionId(2), stats(200, 1));
        let props = a.proposals(&st, &cfg());
        assert_eq!(
            props,
            vec![Proposal::Merge {
                src: PartitionId(1),
                dst: PartitionId(2),
                span_share: 1.0,
            }]
        );
    }

    #[test]
    fn plan_reuses_partitioner_affinity_closure() {
        let a = hot_cold_analyzer();
        let c = cfg();
        let model = a.to_model(&c);
        model.validate().unwrap();
        let plan = a.plan(&c).unwrap();
        // 12 observed buckets; the strong (0,1) pair collapses to one class.
        assert_eq!(plan.partition_count(), 11);
        let hot0 = model.alloc_by_name("p0:b0").unwrap().id;
        let hot1 = model.alloc_by_name("p0:b1").unwrap().id;
        assert_eq!(plan.class_of_alloc(hot0), plan.class_of_alloc(hot1));
    }

    #[test]
    fn decay_ages_and_drops_weights() {
        let mut a = hot_cold_analyzer();
        let before = a.samples();
        a.decay(0.5);
        assert_eq!(a.samples(), before / 2);
        a.decay(0.0);
        assert_eq!(a.samples(), 0);
        assert!(a.nodes().is_empty());
        let st = BTreeMap::new();
        assert!(a.proposals(&st, &cfg()).is_empty());
    }

    #[test]
    fn forget_partition_clears_its_state() {
        let mut a = OnlineAnalyzer::new();
        a.observe(&sample(&[(1, &[(0, 1, 1)]), (2, &[(3, 1, 1)])], 0));
        a.forget_partition(PartitionId(1));
        assert!(a.nodes().keys().all(|n| n.0 != PartitionId(1)));
        assert!(a.nodes().keys().any(|n| n.0 == PartitionId(2)));
    }
}
