//! Plan → runtime glue: materialize a computed [`PartitionPlan`] as live
//! partitions of a [`Stm`] instance.
//!
//! This closes the compile-time → runtime loop of the paper: the analysis
//! derives the partition classes, and `materialize_plan` turns each class
//! into a named, tunable runtime [`Partition`]. Code generated for an
//! access site then binds its variables with
//! [`Partition::tvar`](partstm_core::Partition::tvar) against
//! `partitions[plan.class_of_access(site)]` — after which the access sites
//! themselves are partition-free (the bound `PVar` API).

use std::sync::Arc;

use partstm_core::{Partition, PartitionConfig, Stm};

use crate::partitioner::PartitionPlan;

/// Extension trait implemented for [`Stm`]: materializes a plan's classes
/// as runtime partitions.
pub trait MaterializePlan {
    /// Creates one named, tunable partition per [`crate::PartitionClass`],
    /// in class order: the returned vector is indexed by class index, so
    /// `partitions[plan.class_of_alloc(a).unwrap()]` is the partition that
    /// guards data from allocation site `a`.
    fn materialize_plan(&self, plan: &PartitionPlan) -> Vec<Arc<Partition>>;
}

impl MaterializePlan for Stm {
    fn materialize_plan(&self, plan: &PartitionPlan) -> Vec<Arc<Partition>> {
        self.new_partitions(
            plan.classes
                .iter()
                .map(|c| PartitionConfig::named(c.name.clone()).tunable()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessKind, ModelBuilder};
    use crate::partitioner::{partition, Strategy};

    #[test]
    fn materialized_partitions_match_classes() {
        let mut b = ModelBuilder::new("demo");
        let list = b.alloc("list_nodes", "ListNode");
        let tree = b.alloc("tree_nodes", "TreeNode");
        b.access("list_insert", AccessKind::Write, &[list]);
        b.access("tree_lookup", AccessKind::Read, &[tree]);
        let plan = partition(&b.build().unwrap(), Strategy::MayTouch).unwrap();

        let stm = Stm::new();
        let parts = stm.materialize_plan(&plan);
        assert_eq!(parts.len(), plan.partition_count());
        for (class, part) in plan.classes.iter().zip(&parts) {
            assert_eq!(part.name(), class.name);
            assert!(part.is_tunable(), "plan partitions are tuner-managed");
        }
        // The class → partition indexing contract.
        let list_class = plan.class_of_alloc(list).unwrap();
        assert_eq!(parts[list_class].name(), "list_nodes");

        // And the partitions are live: run a transaction against one.
        let x = parts[list_class].tvar(1u64);
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| tx.modify(&x, |v| v + 1)), 2);
    }
}
