//! Union-find (disjoint-set) with path compression and union by rank —
//! the fixed-point engine of the partitioner.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of disjoint sets remaining.
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Read-only find (no compression); useful when `&mut` is unavailable.
    pub fn find_const(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            core::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            core::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            core::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.set_count(), 4);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(0, 3));
        assert!(uf.same(1, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            if i % 2 == 0 {
                uf.union(i, i + 1);
            }
        }
        for i in 0..10 {
            assert_eq!(uf.find_const(i), uf.clone().find(i));
        }
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }
}
