//! `ProgramModel` JSON round-trip edge cases: inputs a frontend could
//! plausibly emit that sit on the boundary of the schema — empty may-touch
//! sets, duplicate contexts before/after `collapse_contexts`, exotic
//! strings, and boundary ids.

use partstm_analysis::{
    partition, AccessKind, AccessSite, AllocSite, ModelBuilder, ModelError, ProgramModel, Strategy,
};

fn alloc(id: u32, name: &str, ctx: Option<&str>) -> AllocSite {
    AllocSite {
        id,
        name: name.to_owned(),
        type_name: "T".to_owned(),
        context: ctx.map(str::to_owned),
    }
}

fn site(id: u32, may_touch: Vec<u32>) -> AccessSite {
    AccessSite {
        id,
        func: format!("f{id}"),
        kind: AccessKind::Read,
        may_touch,
    }
}

/// An empty may-touch set is invalid; the serializer still emits it
/// faithfully (`[]`), and the decoder rejects the document through
/// validation rather than silently dropping the site.
#[test]
fn empty_may_touch_rejected_on_both_sides_of_the_wire() {
    let m = ProgramModel {
        name: "edge".into(),
        alloc_sites: vec![alloc(0, "a", None)],
        access_sites: vec![site(0, vec![])],
    };
    assert_eq!(m.validate(), Err(ModelError::EmptyMayTouch(0)));
    let j = m.to_json();
    assert!(j.contains("\"may_touch\": []"), "emitted faithfully: {j}");
    let err = ProgramModel::from_json(&j).unwrap_err().to_string();
    assert!(err.contains("empty may-touch"), "got: {err}");
    // An explicitly empty model, by contrast, is valid and round-trips.
    let empty = ProgramModel {
        name: "nothing".into(),
        alloc_sites: vec![],
        access_sites: vec![],
    };
    let back = ProgramModel::from_json(&empty.to_json()).unwrap();
    assert_eq!(back, empty);
}

/// Context duplicates: same (name, type) under several contexts — and one
/// *repeated* context string — collapse to a single representative with
/// rewritten, deduplicated may-touch sets; the collapsed model round-trips
/// and the collapse is idempotent.
#[test]
fn duplicate_context_collapse_roundtrips_and_is_idempotent() {
    let mut b = ModelBuilder::new("ctx-dup");
    let a1 = b.alloc_in_context("node", "Node", "main->build");
    let a2 = b.alloc_in_context("node", "Node", "main->build"); // repeated context
    let a3 = b.alloc_in_context("node", "Node", "main->clone");
    let other = b.alloc("other", "Other");
    b.access("touch_all", AccessKind::ReadWrite, &[a1, a2, a3]);
    b.access("touch_mixed", AccessKind::Read, &[a3, other]);
    let m = b.build().unwrap();

    let flat = m.collapse_contexts();
    flat.validate().unwrap();
    assert_eq!(flat.alloc_sites.len(), 2, "three contexts fold to one site");
    assert!(flat.alloc_sites.iter().all(|a| a.context.is_none()));
    // The spanning access now touches the representative exactly once.
    assert_eq!(flat.access_sites[0].may_touch, vec![a1]);
    assert_eq!(flat.access_sites[1].may_touch, vec![a1, other]);

    // Wire round-trip preserves the collapsed model exactly.
    let back = ProgramModel::from_json(&flat.to_json()).unwrap();
    assert_eq!(back, flat);

    // Idempotence (modulo the renaming the collapse applies).
    let twice = flat.collapse_contexts();
    assert_eq!(twice.alloc_sites, flat.alloc_sites);
    assert_eq!(twice.access_sites, flat.access_sites);

    // The context-sensitive model partitions no coarser than the
    // collapsed one (the paper's argument for context sensitivity).
    let fine = partition(&m, Strategy::MayTouch).unwrap();
    let coarse = partition(&flat, Strategy::MayTouch).unwrap();
    assert!(fine.partition_count() >= coarse.partition_count());
}

/// Strings with JSON metacharacters, escapes and non-ASCII round-trip.
#[test]
fn exotic_strings_roundtrip() {
    let mut b = ModelBuilder::new("weird \"name\" \\ with\ttabs\nand √unicode");
    let a = b.alloc_in_context("nodes/\"quoted\"", "Ty<p,e>", "main -> λ{0}");
    b.access("fn with spaces \u{1F980}", AccessKind::Write, &[a]);
    let m = b.build().unwrap();
    let back = ProgramModel::from_json(&m.to_json()).unwrap();
    assert_eq!(back, m);
}

/// Boundary ids (u32::MAX) survive the f64-backed number representation.
#[test]
fn boundary_ids_roundtrip() {
    let m = ProgramModel {
        name: "ids".into(),
        alloc_sites: vec![
            alloc(u32::MAX, "top", Some("ctx")),
            alloc(0, "bottom", None),
        ],
        access_sites: vec![site(u32::MAX, vec![u32::MAX, 0])],
    };
    m.validate().unwrap();
    let back = ProgramModel::from_json(&m.to_json()).unwrap();
    assert_eq!(back, m);
    let plan = partition(&back, Strategy::MayTouch).unwrap();
    assert_eq!(plan.partition_count(), 1, "spanning access merges the pair");
}
