//! # partstm-tuning — runtime per-partition tuning policies
//!
//! The dynamic half of *"Automatic Data Partitioning in Software
//! Transactional Memories"* (SPAA 2008): heuristics that observe each
//! partition's statistics window and reconfigure the partition's STM
//! parameters (read visibility, conflict-detection granularity) on the fly.
//!
//! * [`ThresholdPolicy`] — the paper's rule-based heuristic with hysteresis;
//! * [`HillClimbPolicy`] — measurement-driven probing (ablation baseline);
//! * [`FixedPolicy`] — pins a configuration (testing aid).
//!
//! ```
//! use std::sync::Arc;
//! use partstm_core::{PartitionConfig, Stm};
//! use partstm_tuning::ThresholdPolicy;
//!
//! let stm = Stm::new();
//! let hot = stm.new_partition(PartitionConfig::named("hot").tunable());
//! stm.set_tuner(Arc::new(ThresholdPolicy::new()));
//! // ... run transactions; `hot` is re-tuned every window.
//! # let _ = hot;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hillclimb;
pub mod threshold;

pub use hillclimb::HillClimbPolicy;
pub use threshold::{coarsen, refine, ThresholdPolicy, Thresholds};

use partstm_core::{DynConfig, TuneInput, TuningPolicy};

/// A policy that always requests one fixed configuration (engine/test aid:
/// exercises the switch path deterministically).
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    /// The configuration to pin.
    pub config: DynConfig,
    /// Evaluation window.
    pub window: u64,
}

impl TuningPolicy for FixedPolicy {
    fn window(&self) -> u64 {
        self.window
    }

    fn evaluate(&self, input: &TuneInput) -> Option<DynConfig> {
        if input.config == self.config {
            None
        } else {
            Some(self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, PartitionId, ReadMode, StatCounters};

    #[test]
    fn fixed_policy_requests_until_pinned() {
        let mut cfg = DynConfig::from(&PartitionConfig::default());
        cfg.read_mode = ReadMode::Visible;
        let p = FixedPolicy {
            config: cfg,
            window: 8,
        };
        let input = TuneInput {
            partition: PartitionId(0),
            name: "x".into(),
            config: DynConfig::from(&PartitionConfig::default()),
            delta: StatCounters::default(),
            seconds: 0.1,
        };
        assert_eq!(p.evaluate(&input), Some(cfg));
        let pinned = TuneInput {
            config: cfg,
            ..input
        };
        assert_eq!(p.evaluate(&pinned), None);
        assert_eq!(p.window(), 8);
    }
}
