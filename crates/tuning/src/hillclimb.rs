//! Hill-climbing (measurement-driven) tuning: an alternative to the
//! threshold heuristic that *tries* candidate configurations and keeps the
//! one with the best measured commit throughput.
//!
//! Used by ablation A2/A3 to compare model-driven vs measurement-driven
//! tuning; slower to converge but threshold-free.

use parking_lot::Mutex;
use std::collections::HashMap;

use partstm_core::{DynConfig, Granularity, PartitionId, ReadMode, TuneInput, TuningPolicy};

/// Probe sequence state for one partition.
#[derive(Debug)]
enum Phase {
    /// Measuring candidate `idx`; previous candidates scored in `scores`.
    Probing { idx: usize, scores: Vec<f64> },
    /// Best candidate installed; sleeping for `windows_left` evaluations.
    Settled { windows_left: u32 },
}

#[derive(Debug)]
struct PartState {
    phase: Phase,
    candidates: Vec<DynConfig>,
}

/// Measurement-driven policy cycling through candidate configurations.
#[derive(Debug)]
pub struct HillClimbPolicy {
    window: u64,
    /// Evaluations to stay settled before re-probing.
    settle_windows: u32,
    state: Mutex<HashMap<PartitionId, PartState>>,
}

impl HillClimbPolicy {
    /// `window`: commits per measurement; `settle_windows`: how long to
    /// keep the winner before re-probing (adaptation latency knob).
    pub fn new(window: u64, settle_windows: u32) -> Self {
        HillClimbPolicy {
            window,
            settle_windows,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Candidate set: read modes x granularity ladder around the current
    /// configuration (acquire mode and CM kept).
    fn candidates(seed: DynConfig) -> Vec<DynConfig> {
        let mut v = Vec::new();
        for rm in [ReadMode::Invisible, ReadMode::Visible] {
            for g in [
                Granularity::Word,
                Granularity::Stripe { shift: 6 },
                Granularity::PartitionLock,
            ] {
                let mut c = seed;
                c.read_mode = rm;
                c.granularity = g;
                v.push(c);
            }
        }
        v
    }
}

impl TuningPolicy for HillClimbPolicy {
    fn window(&self) -> u64 {
        self.window
    }

    fn evaluate(&self, input: &TuneInput) -> Option<DynConfig> {
        let throughput = if input.seconds > 0.0 {
            input.delta.commits as f64 / input.seconds
        } else {
            0.0
        };
        let mut guard = self.state.lock();
        let st = guard.entry(input.partition).or_insert_with(|| PartState {
            phase: Phase::Probing {
                idx: 0,
                scores: Vec::new(),
            },
            candidates: Self::candidates(input.config),
        });
        match &mut st.phase {
            Phase::Settled { windows_left } => {
                if *windows_left > 0 {
                    *windows_left -= 1;
                    None
                } else {
                    st.phase = Phase::Probing {
                        idx: 0,
                        scores: Vec::new(),
                    };
                    st.candidates = Self::candidates(input.config);
                    Some(st.candidates[0])
                }
            }
            Phase::Probing { idx, scores } => {
                // `throughput` scores the *currently installed* config,
                // which is candidate idx-1 (or the pre-probe config for the
                // very first call, which we discard as a warmup).
                if *idx > 0 {
                    scores.push(throughput);
                }
                if *idx < st.candidates.len() {
                    let next = st.candidates[*idx];
                    *idx += 1;
                    Some(next)
                } else {
                    // All candidates measured: install the best.
                    let best = scores
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    let winner = st.candidates[best];
                    st.phase = Phase::Settled {
                        windows_left: self.settle_windows,
                    };
                    Some(winner)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, StatCounters};

    fn input(cfg: DynConfig, commits: u64, seconds: f64) -> TuneInput {
        TuneInput {
            partition: PartitionId(0),
            name: "p".into(),
            config: cfg,
            delta: StatCounters {
                commits,
                ..Default::default()
            },
            seconds,
        }
    }

    #[test]
    fn probes_all_candidates_then_settles_on_best() {
        let p = HillClimbPolicy::new(512, 3);
        let base = DynConfig::from(&PartitionConfig::default());
        let mut cfg = base;
        let mut seen = Vec::new();
        // Warmup + 6 probes; feed throughput proportional to probe index,
        // making the last candidate (Visible/PartitionLock) the winner.
        for step in 0..7 {
            let tput = 1000.0 * (step as f64 + 1.0);
            let decision = p.evaluate(&input(cfg, tput as u64, 1.0));
            if let Some(c) = decision {
                seen.push(c);
                cfg = c;
            }
        }
        // 6 probe installs + 1 winner install.
        assert_eq!(seen.len(), 7);
        let winner = *seen.last().unwrap();
        assert_eq!(winner.read_mode, ReadMode::Visible);
        assert_eq!(winner.granularity, Granularity::PartitionLock);
        // Settled: no decisions for `settle_windows` evaluations.
        for _ in 0..3 {
            assert_eq!(p.evaluate(&input(cfg, 1000, 1.0)), None);
        }
        // Then it re-probes.
        assert!(p.evaluate(&input(cfg, 1000, 1.0)).is_some());
    }

    #[test]
    fn best_first_candidate_wins_when_fastest() {
        let p = HillClimbPolicy::new(512, 10);
        let base = DynConfig::from(&PartitionConfig::default());
        let mut cfg = base;
        let mut installs = Vec::new();
        // First probe fastest: decreasing throughput sequence.
        for step in 0..7 {
            let tput = 10_000.0 / (step as f64 + 1.0);
            if let Some(c) = p.evaluate(&input(cfg, tput as u64, 1.0)) {
                installs.push(c);
                cfg = c;
            }
        }
        let winner = *installs.last().unwrap();
        assert_eq!(winner.read_mode, ReadMode::Invisible);
        assert_eq!(winner.granularity, Granularity::Word);
    }

    #[test]
    fn zero_seconds_is_harmless() {
        let p = HillClimbPolicy::new(512, 1);
        let base = DynConfig::from(&PartitionConfig::default());
        let _ = p.evaluate(&input(base, 100, 0.0));
    }
}
