//! The paper's runtime heuristic: threshold rules with hysteresis.
//!
//! Per evaluation window the policy inspects a partition's update-commit
//! fraction and abort rate and decides:
//!
//! * **read visibility** — visible reads pay an RMW per read but let
//!   writers detect readers eagerly; profitable when the partition is
//!   update-heavy *and* conflicted. Invisible reads win otherwise.
//! * **conflict-detection granularity** — a ladder `Word -> Stripe ->
//!   PartitionLock`. Under extreme contention coarse detection degenerates
//!   the partition into a single versioned lock (conflicts surface at first
//!   access, no wasted work); under low contention fine detection avoids
//!   false conflicts.
//!
//! A change is only issued after `hysteresis` consecutive windows agree,
//! preventing oscillation on noisy workloads (ablation A2 measures this).

use parking_lot::Mutex;
use std::collections::HashMap;

use partstm_core::{DynConfig, Granularity, PartitionId, ReadMode, TuneInput, TuningPolicy};

/// Tunable thresholds (defaults follow the paper's qualitative rules).
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Evaluation window (commits per partition).
    pub window: u64,
    /// Minimum commits in a window before any decision is made.
    pub min_commits: u64,
    /// Switch to visible reads when `update_fraction >= this` ...
    pub visible_update_hi: f64,
    /// ... and `abort_rate >= this`.
    pub visible_abort_hi: f64,
    /// Switch back to invisible when `update_fraction <= this` ...
    pub invisible_update_lo: f64,
    /// ... or `abort_rate <= this`.
    pub invisible_abort_lo: f64,
    /// Coarsen granularity one step when `abort_rate >= this`.
    pub coarsen_abort_hi: f64,
    /// Refine granularity one step when `abort_rate <= this`.
    pub refine_abort_lo: f64,
    /// Stripe shift used for the middle rung of the ladder.
    pub stripe_shift: u8,
    /// Consecutive agreeing windows required before switching.
    pub hysteresis: u32,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            window: 4096,
            min_commits: 256,
            visible_update_hi: 0.45,
            visible_abort_hi: 0.10,
            invisible_update_lo: 0.20,
            invisible_abort_lo: 0.02,
            coarsen_abort_hi: 0.60,
            refine_abort_lo: 0.10,
            stripe_shift: 6,
            hysteresis: 2,
        }
    }
}

#[derive(Debug, Default)]
struct PartState {
    /// Pending decision and how many consecutive windows proposed it.
    pending: Option<(DynConfig, u32)>,
}

/// Threshold policy with per-partition hysteresis state.
#[derive(Debug)]
pub struct ThresholdPolicy {
    t: Thresholds,
    state: Mutex<HashMap<PartitionId, PartState>>,
}

impl ThresholdPolicy {
    /// Policy with default thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(Thresholds::default())
    }

    /// Policy with custom thresholds.
    pub fn with_thresholds(t: Thresholds) -> Self {
        ThresholdPolicy {
            t,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// The raw (hysteresis-free) desired configuration for an input.
    pub fn desired(&self, input: &TuneInput) -> DynConfig {
        let mut cfg = input.config;
        let upd = input.update_fraction();
        let ar = input.abort_rate();

        // Read visibility.
        match cfg.read_mode {
            ReadMode::Invisible => {
                if upd >= self.t.visible_update_hi && ar >= self.t.visible_abort_hi {
                    cfg.read_mode = ReadMode::Visible;
                }
            }
            ReadMode::Visible => {
                if upd <= self.t.invisible_update_lo || ar <= self.t.invisible_abort_lo {
                    cfg.read_mode = ReadMode::Invisible;
                }
            }
        }

        // Granularity ladder.
        if ar >= self.t.coarsen_abort_hi {
            cfg.granularity = coarsen(cfg.granularity, self.t.stripe_shift);
        } else if ar <= self.t.refine_abort_lo {
            cfg.granularity = refine(cfg.granularity, self.t.stripe_shift);
        }
        cfg
    }
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// One step coarser on the ladder.
pub fn coarsen(g: Granularity, stripe_shift: u8) -> Granularity {
    match g {
        Granularity::Word => Granularity::Stripe {
            shift: stripe_shift,
        },
        Granularity::Stripe { .. } => Granularity::PartitionLock,
        Granularity::PartitionLock => Granularity::PartitionLock,
    }
}

/// One step finer on the ladder.
pub fn refine(g: Granularity, stripe_shift: u8) -> Granularity {
    match g {
        Granularity::Word => Granularity::Word,
        Granularity::Stripe { .. } => Granularity::Word,
        Granularity::PartitionLock => Granularity::Stripe {
            shift: stripe_shift,
        },
    }
}

impl TuningPolicy for ThresholdPolicy {
    fn window(&self) -> u64 {
        self.t.window
    }

    fn evaluate(&self, input: &TuneInput) -> Option<DynConfig> {
        if input.delta.commits < self.t.min_commits {
            return None;
        }
        let want = self.desired(input);
        if want == input.config {
            // Content: clear any pending switch.
            self.state
                .lock()
                .entry(input.partition)
                .or_default()
                .pending = None;
            return None;
        }
        let mut guard = self.state.lock();
        let st = guard.entry(input.partition).or_default();
        let n = match &st.pending {
            Some((cfg, n)) if *cfg == want => n + 1,
            _ => 1,
        };
        if n >= self.t.hysteresis {
            st.pending = None;
            Some(want)
        } else {
            st.pending = Some((want, n));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, StatCounters};

    fn input(cfg: DynConfig, commits: u64, updates: u64, aborts: u64) -> TuneInput {
        TuneInput {
            partition: PartitionId(1),
            name: "p".into(),
            config: cfg,
            delta: StatCounters {
                commits,
                update_commits: updates,
                aborts_wlock: aborts,
                ..Default::default()
            },
            seconds: 0.05,
        }
    }

    fn base() -> DynConfig {
        DynConfig::from(&PartitionConfig::default())
    }

    #[test]
    fn contended_updates_switch_to_visible_after_hysteresis() {
        let p = ThresholdPolicy::new();
        // 60% updates, ~33% aborts.
        let i = input(base(), 1000, 600, 500);
        assert_eq!(p.evaluate(&i), None, "first window only arms hysteresis");
        let got = p.evaluate(&i).expect("second agreeing window switches");
        assert_eq!(got.read_mode, ReadMode::Visible);
    }

    #[test]
    fn read_mostly_reverts_to_invisible() {
        let p = ThresholdPolicy::new();
        let mut cfg = base();
        cfg.read_mode = ReadMode::Visible;
        let i = input(cfg, 1000, 50, 5);
        assert_eq!(p.evaluate(&i), None);
        let got = p.evaluate(&i).unwrap();
        assert_eq!(got.read_mode, ReadMode::Invisible);
    }

    #[test]
    fn tiny_windows_are_ignored() {
        let p = ThresholdPolicy::new();
        let i = input(base(), 10, 10, 500);
        assert_eq!(p.evaluate(&i), None);
        assert_eq!(p.evaluate(&i), None);
        assert_eq!(p.evaluate(&i), None);
    }

    #[test]
    fn disagreement_resets_hysteresis() {
        let p = ThresholdPolicy::new();
        let hot = input(base(), 1000, 600, 500);
        let calm = input(base(), 1000, 100, 5);
        assert_eq!(p.evaluate(&hot), None);
        assert_eq!(p.evaluate(&calm), None, "calm window clears pending");
        assert_eq!(p.evaluate(&hot), None, "must re-arm");
        assert!(p.evaluate(&hot).is_some());
    }

    #[test]
    fn extreme_contention_climbs_to_partition_lock() {
        let p = ThresholdPolicy::new();
        // 80% abort rate: commits=1000, aborts=4000.
        let i1 = input(base(), 1000, 900, 4000);
        assert_eq!(p.evaluate(&i1), None);
        let c1 = p.evaluate(&i1).unwrap();
        assert_eq!(
            c1.granularity,
            Granularity::Stripe { shift: 6 },
            "first step coarsens to stripe"
        );
        let mut i2 = i1.clone();
        i2.config = c1;
        assert_eq!(p.evaluate(&i2), None);
        let c2 = p.evaluate(&i2).unwrap();
        assert_eq!(c2.granularity, Granularity::PartitionLock);
        // Contention collapses: refine back down.
        let mut i3 = input(c2, 1000, 900, 10);
        i3.config.read_mode = c2.read_mode;
        assert_eq!(p.evaluate(&i3), None);
        let c3 = p.evaluate(&i3).unwrap();
        assert_eq!(c3.granularity, Granularity::Stripe { shift: 6 });
    }

    #[test]
    fn ladder_endpoints_saturate() {
        assert_eq!(
            coarsen(Granularity::PartitionLock, 6),
            Granularity::PartitionLock
        );
        assert_eq!(refine(Granularity::Word, 6), Granularity::Word);
        assert_eq!(
            coarsen(Granularity::Word, 8),
            Granularity::Stripe { shift: 8 }
        );
        assert_eq!(
            refine(Granularity::PartitionLock, 8),
            Granularity::Stripe { shift: 8 }
        );
    }

    #[test]
    fn partitions_have_independent_hysteresis() {
        let p = ThresholdPolicy::new();
        let mut i1 = input(base(), 1000, 600, 500);
        i1.partition = PartitionId(1);
        let mut i2 = i1.clone();
        i2.partition = PartitionId(2);
        assert_eq!(p.evaluate(&i1), None);
        assert_eq!(p.evaluate(&i2), None, "partition 2 arms separately");
        assert!(p.evaluate(&i1).is_some());
        assert!(p.evaluate(&i2).is_some());
    }
}
