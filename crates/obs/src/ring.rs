//! The flight recorder: bounded, lock-free event rings.
//!
//! An [`EventRing`] is a power-of-two array of seqlocked slots plus a
//! monotone head counter. Recording claims a position with one relaxed
//! `fetch_add` and writes the slot under a per-slot sequence word (odd =
//! write in progress); old entries are silently overwritten, so the ring
//! always holds the *newest* `capacity` events. Snapshots never block
//! producers: a reader that observes a slot mid-write (odd sequence, or a
//! sequence that moved while reading) discards that slot.
//!
//! The [`FlightRecorder`] arranges rings the way the runtime produces
//! events: one *lane* per thread slot for the (sampled) transaction
//! lifecycle — single producer, zero contention — plus one shared
//! *control ring* for the rare control-plane events (quiesce windows,
//! splits, resizes, controller decisions), where claim collisions are
//! possible in principle but negligible at control-plane rates, and torn
//! slots are dropped by readers either way. This is a diagnostic
//! instrument: completeness is traded for never stalling the runtime.

use core::sync::atomic::{fence, AtomicU64, Ordering};

use crate::codes;

/// What an [`Event`] describes. Payload word meanings (`a`, `b`, `c`) are
/// per-variant; unused words are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// Empty slot marker; never recorded explicitly.
    None = 0,
    /// A flag→quiesce window started draining. `a` = partition id.
    QuiesceBegin = 1,
    /// A quiesce window resolved. `a` = partition id, `b` = drain
    /// duration in µs, `c` = 1 if quiescence was reached, 0 on timeout.
    QuiesceEnd = 2,
    /// A configuration switch finished. `a` = partition id, `b` =
    /// `codes::OUTCOME_*`.
    ConfigSwitch = 3,
    /// An in-place orec-table resize finished. `a` = partition id, `b` =
    /// `codes::OUTCOME_*`, `c` = requested orec count.
    OrecResize = 4,
    /// A version-ring depth change finished. `a` = partition id, `b` =
    /// `codes::OUTCOME_*`, `c` = requested depth.
    RingDepth = 5,
    /// A repartition (split/merge/migrate) finished. `a` = destination
    /// partition id, `b` = `codes::OUTCOME_*`, `c` = variables moved.
    Repartition = 6,
    /// A privatization attempt finished. `a` = partition id, `b` =
    /// `codes::OUTCOME_*`.
    Privatize = 7,
    /// A privatized partition was republished. `a` = partition id, `b` =
    /// hold duration in µs.
    Republish = 8,
    /// A partition's tuning window was reset after a structural action.
    /// `a` = partition id.
    TunerWindowReset = 9,
    /// The repartition controller scored a proposal. `a` = subject
    /// partition id, `b` = `codes::ACTION_*` in the low byte and the
    /// hysteresis streak (approvals so far) in the next byte, `c` = the
    /// proposal score as `f64` bits.
    CtrlProposal = 10,
    /// The controller executed (or failed to execute) an action. `a` =
    /// subject partition id, `b` = `codes::ACTION_*` in the low byte and
    /// the variables moved in the upper bits, `c` = `codes::OUTCOME_*`.
    CtrlAction = 11,
    /// Sampled transaction attempt began. `a` = thread lane, `b` = serial.
    TxBegin = 12,
    /// Sampled transaction passed commit-time validation. `a` = thread
    /// lane, `b` = read-set length.
    TxValidate = 13,
    /// Sampled transaction committed. `a` = thread lane, `b` = latency
    /// from begin in ns, `c` = read-set length.
    TxCommit = 14,
    /// Sampled transaction attempt aborted. `a` = thread lane, `b` =
    /// `codes::ABORT_*`, `c` = failed attempts so far.
    TxAbort = 15,
    /// A quiesce window hit its hard deadline with a slot still inside a
    /// pre-epoch transaction. `a` = partition id, `b` = stuck thread
    /// slot, `c` = encounter locks the slot held at scan time.
    StuckSlot = 16,
    /// A quiesce window crossed its soft deadline and raised kill flags
    /// against the blocking slots. `a` = partition id, `b` = slots
    /// killed, `c` = µs since the window began draining.
    KillRescue = 17,
    /// The repartition controller's per-partition circuit breaker changed
    /// state. `a` = partition id, `b` = 1 on open / 0 on close, `c` =
    /// consecutive quiesce-timeout failures at the transition.
    CtrlBreaker = 18,
}

impl EventKind {
    /// Decodes a stored kind word; unknown values collapse to `None`.
    pub fn from_u16(v: u16) -> EventKind {
        match v {
            1 => EventKind::QuiesceBegin,
            2 => EventKind::QuiesceEnd,
            3 => EventKind::ConfigSwitch,
            4 => EventKind::OrecResize,
            5 => EventKind::RingDepth,
            6 => EventKind::Repartition,
            7 => EventKind::Privatize,
            8 => EventKind::Republish,
            9 => EventKind::TunerWindowReset,
            10 => EventKind::CtrlProposal,
            11 => EventKind::CtrlAction,
            12 => EventKind::TxBegin,
            13 => EventKind::TxValidate,
            14 => EventKind::TxCommit,
            15 => EventKind::TxAbort,
            16 => EventKind::StuckSlot,
            17 => EventKind::KillRescue,
            18 => EventKind::CtrlBreaker,
            _ => EventKind::None,
        }
    }

    /// Whether this is a control-plane event (as opposed to a sampled
    /// transaction lifecycle event). Timelines typically show only these
    /// and summarize the rest.
    pub fn is_control_plane(self) -> bool {
        !matches!(
            self,
            EventKind::TxBegin | EventKind::TxValidate | EventKind::TxCommit | EventKind::TxAbort
        ) && self != EventKind::None
    }
}

/// One timestamped flight-recorder entry. `Copy` by design: slots hold it
/// as bare atomics, payload semantics live in [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the process observation epoch
    /// ([`crate::now_micros`]).
    pub micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl Event {
    /// An event stamped with the current time.
    pub fn now(kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            micros: crate::now_micros(),
            kind,
            a,
            b,
            c,
        }
    }

    /// An event with an explicit timestamp (tests, replay).
    pub fn at(micros: u64, kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            micros,
            kind,
            a,
            b,
            c,
        }
    }
}

/// Renders an event as one human-readable timeline line (no timestamp —
/// the timeline printer owns time formatting).
pub fn render_event(e: &Event) -> String {
    match e.kind {
        EventKind::None => "(empty)".into(),
        EventKind::QuiesceBegin => format!("quiesce-begin    p{}", e.a),
        EventKind::QuiesceEnd => format!(
            "quiesce-end      p{} after {}us ({})",
            e.a,
            e.b,
            if e.c == 1 { "quiesced" } else { "timed out" }
        ),
        EventKind::ConfigSwitch => {
            format!("config-switch    p{} -> {}", e.a, codes::outcome_name(e.b))
        }
        EventKind::OrecResize => format!(
            "orec-resize      p{} -> {} (orecs={})",
            e.a,
            codes::outcome_name(e.b),
            e.c
        ),
        EventKind::RingDepth => format!(
            "ring-depth       p{} -> {} (depth={})",
            e.a,
            codes::outcome_name(e.b),
            e.c
        ),
        EventKind::Repartition => format!(
            "repartition      -> p{} {} (moved={})",
            e.a,
            codes::outcome_name(e.b),
            e.c
        ),
        EventKind::Privatize => {
            format!("privatize        p{} -> {}", e.a, codes::outcome_name(e.b))
        }
        EventKind::Republish => format!("republish        p{} (held {}us)", e.a, e.b),
        EventKind::TunerWindowReset => format!("tuner-reset      p{}", e.a),
        EventKind::CtrlProposal => format!(
            "ctrl-proposal    {} p{} score={:.3} streak={}",
            codes::action_name(e.b & 0xFF),
            e.a,
            f64::from_bits(e.c),
            (e.b >> 8) & 0xFF
        ),
        EventKind::CtrlAction => format!(
            "ctrl-action      {} p{} -> {} (moved={})",
            codes::action_name(e.b & 0xFF),
            e.a,
            codes::outcome_name(e.c),
            e.b >> 8
        ),
        EventKind::TxBegin => format!("tx-begin         lane{} serial={}", e.a, e.b),
        EventKind::TxValidate => format!("tx-validate      lane{} reads={}", e.a, e.b),
        EventKind::TxCommit => format!("tx-commit        lane{} {}ns reads={}", e.a, e.b, e.c),
        EventKind::TxAbort => format!(
            "tx-abort         lane{} {} (attempt {})",
            e.a,
            codes::abort_name(e.b),
            e.c
        ),
        EventKind::StuckSlot => {
            format!("stuck-slot       p{} slot{} (held locks={})", e.a, e.b, e.c)
        }
        EventKind::KillRescue => format!(
            "kill-rescue      p{} killed {} slot(s) after {}us",
            e.a, e.b, e.c
        ),
        EventKind::CtrlBreaker => format!(
            "ctrl-breaker     p{} {} (consecutive timeouts={})",
            e.a,
            if e.b == 1 { "OPEN" } else { "closed" },
            e.c
        ),
    }
}

/// One seqlocked slot: odd `seq` means a write is in progress.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    micros: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

/// A bounded lock-free ring of [`Event`]s that overwrites its oldest
/// entries. See the module docs for the producer/reader protocol.
#[derive(Debug)]
pub struct EventRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Creates a ring holding the newest `capacity` events (rounded up to
    /// a power of two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let n = capacity.next_power_of_two().max(2);
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, Slot::default);
        EventRing {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records an event, overwriting the oldest entry once full.
    pub fn record(&self, ev: Event) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize;
        let slot = &self.slots[i & (self.slots.len() - 1)];
        // Enter the write: odd sequence tells readers to discard. AcqRel
        // keeps the payload stores below from floating above the marker.
        slot.seq.fetch_add(1, Ordering::AcqRel);
        slot.micros.store(ev.micros, Ordering::Relaxed);
        slot.kind.store(ev.kind as u64, Ordering::Relaxed);
        slot.a.store(ev.a, Ordering::Relaxed);
        slot.b.store(ev.b, Ordering::Relaxed);
        slot.c.store(ev.c, Ordering::Relaxed);
        // Exit: even again; Release publishes the payload with it.
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Best-effort snapshot of the current contents, unordered. Slots
    /// observed mid-write are skipped; producers are never blocked.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 % 2 != 0 {
                continue;
            }
            let ev = Event {
                micros: slot.micros.load(Ordering::Relaxed),
                kind: EventKind::from_u16(slot.kind.load(Ordering::Relaxed) as u16),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                c: slot.c.load(Ordering::Relaxed),
            };
            // The fence orders the payload loads above before the
            // re-check: an unchanged sequence proves no writer touched
            // the slot while we read it.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s0 || ev.kind == EventKind::None {
                continue;
            }
            out.push(ev);
        }
        out
    }
}

/// Default number of per-thread lanes.
pub(crate) const DEFAULT_LANES: usize = 64;
/// Default per-lane capacity (events).
pub(crate) const DEFAULT_LANE_CAP: usize = 128;
/// Default control-ring capacity (events).
pub(crate) const DEFAULT_CONTROL_CAP: usize = 1024;

/// The process flight recorder: per-thread lanes for sampled transaction
/// lifecycle events plus a shared control ring for control-plane events.
/// With the default shape (64 lanes × 128 events + 1024 control events)
/// it costs ~440 KiB, allocated once.
#[derive(Debug)]
pub struct FlightRecorder {
    lanes: Box<[EventRing]>,
    control: EventRing,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_LANES, DEFAULT_LANE_CAP, DEFAULT_CONTROL_CAP)
    }
}

impl FlightRecorder {
    /// Creates a recorder with `lanes` per-thread rings of `lane_cap`
    /// events each and a control ring of `control_cap` events.
    pub fn new(lanes: usize, lane_cap: usize, control_cap: usize) -> FlightRecorder {
        let mut v = Vec::with_capacity(lanes.max(1));
        v.resize_with(lanes.max(1), || EventRing::new(lane_cap));
        FlightRecorder {
            lanes: v.into_boxed_slice(),
            control: EventRing::new(control_cap),
        }
    }

    /// Records a thread-local event on `lane` (callers pass their thread
    /// slot index; lanes wrap, so any index is valid).
    #[inline]
    pub fn record(&self, lane: usize, ev: Event) {
        self.lanes[lane % self.lanes.len()].record(ev);
    }

    /// Records a control-plane event on the shared control ring.
    #[inline]
    pub fn record_control(&self, ev: Event) {
        self.control.record(ev);
    }

    /// Total events ever recorded across all rings.
    pub fn recorded(&self) -> u64 {
        self.lanes.iter().map(EventRing::recorded).sum::<u64>() + self.control.recorded()
    }

    /// Merged best-effort snapshot of every ring, sorted by timestamp.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = self.control.snapshot();
        for lane in self.lanes.iter() {
            out.extend(lane.snapshot());
        }
        out.sort_by_key(|e| e.micros);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite coverage: wraparound keeps exactly the newest events.
    #[test]
    fn wraparound_keeps_newest_events() {
        let ring = EventRing::new(8);
        for i in 0..100u64 {
            ring.record(Event::at(i, EventKind::TxCommit, i, 0, 0));
        }
        assert_eq!(ring.recorded(), 100);
        let mut snap = ring.snapshot();
        snap.sort_by_key(|e| e.micros);
        assert_eq!(snap.len(), 8);
        let got: Vec<u64> = snap.iter().map(|e| e.a).collect();
        assert_eq!(got, (92..100).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_rounds_up_and_empty_ring_snapshots_empty() {
        let ring = EventRing::new(5);
        assert_eq!(ring.capacity(), 8);
        assert!(ring.snapshot().is_empty(), "None slots are skipped");
    }

    #[test]
    fn concurrent_producers_never_tear_payloads() {
        // Each producer writes events whose three payload words encode the
        // same value; a torn slot would decode inconsistently.
        let ring = std::sync::Arc::new(EventRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let v = t * 1_000_000 + i;
                        ring.record(Event::at(v, EventKind::TxCommit, v, v ^ !0, v << 1));
                    }
                });
            }
        });
        for e in ring.snapshot() {
            assert_eq!(e.b, e.a ^ !0, "torn slot survived the seqlock");
            assert_eq!(e.c, e.a << 1, "torn slot survived the seqlock");
        }
    }

    #[test]
    fn recorder_merges_lanes_and_control_sorted() {
        let r = FlightRecorder::new(2, 4, 4);
        r.record(0, Event::at(30, EventKind::TxCommit, 0, 0, 0));
        r.record(1, Event::at(10, EventKind::TxAbort, 1, 0, 0));
        r.record_control(Event::at(20, EventKind::QuiesceBegin, 7, 0, 0));
        let snap = r.snapshot();
        let stamps: Vec<u64> = snap.iter().map(|e| e.micros).collect();
        assert_eq!(stamps, vec![10, 20, 30]);
        assert_eq!(r.recorded(), 3);
        assert!(snap[1].kind.is_control_plane());
        assert!(!snap[0].kind.is_control_plane());
    }

    #[test]
    fn render_is_stable_for_every_kind() {
        let score = 1.5f64.to_bits();
        let cases = [
            (EventKind::QuiesceEnd, 3, 42, 1, "quiesce-end"),
            (EventKind::ConfigSwitch, 1, 0, 0, "switched"),
            (EventKind::CtrlProposal, 2, 2 << 8, score, "score=1.500"),
            (EventKind::CtrlAction, 2, 17 << 8, 0, "moved=17"),
            (
                EventKind::TxAbort,
                0,
                crate::codes::ABORT_VALIDATION,
                2,
                "validation",
            ),
            (EventKind::StuckSlot, 4, 9, 3, "held locks=3"),
            (EventKind::KillRescue, 4, 2, 150, "killed 2 slot(s)"),
            (EventKind::CtrlBreaker, 6, 1, 3, "OPEN"),
        ];
        for (kind, a, b, c, needle) in cases {
            let line = render_event(&Event::at(5, kind, a, b, c));
            assert!(line.contains(needle), "{line:?} lacks {needle:?}");
        }
    }
}
