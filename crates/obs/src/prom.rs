//! Prometheus text-exposition rendering of a [`RegistrySnapshot`].
//!
//! Counters render as `counter` metrics, histograms as native Prometheus
//! `histogram` metrics with cumulative `_bucket{le=...}` series at the
//! power-of-two bucket boundaries (empty buckets are elided except the
//! mandatory `+Inf`), plus `_sum` and `_count`. Metric names are
//! prefixed `partstm_` and sanitized to `[a-zA-Z0-9_]`.

use std::fmt::Write as _;

use crate::hist::{bucket_bound, HistSnapshot};
use crate::registry::RegistrySnapshot;

/// Prometheus-legal metric name: `partstm_` + sanitized `name`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("partstm_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() || ch == '_' {
            ch
        } else {
            '_'
        });
    }
    out
}

fn write_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    let m = metric_name(name);
    let _ = writeln!(out, "# TYPE {m} histogram");
    let mut cum = 0u64;
    for (i, b) in h.buckets.iter().enumerate() {
        cum += b;
        if *b == 0 {
            continue;
        }
        let bound = bucket_bound(i);
        if bound == u64::MAX {
            continue; // folded into +Inf below
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"{bound}\"}} {cum}");
    }
    let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{m}_sum {}", h.sum);
    let _ = writeln!(out, "{m}_count {}", h.count);
}

/// Renders `snap` in Prometheus text exposition format (version 0.0.4).
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {v}");
    }
    for (name, h) in &snap.hists {
        write_hist(&mut out, name, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_counters_and_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("quiesce.windows").add(3);
        let h = reg.histogram("commit_latency_ns");
        h.record(0); // bucket 0, le="0"
        h.record(5); // bucket 3, le="7"
        h.record(5);
        h.record(u64::MAX); // top bucket, only in +Inf
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE partstm_quiesce_windows counter"));
        assert!(text.contains("partstm_quiesce_windows 3"));
        assert!(text.contains("# TYPE partstm_commit_latency_ns histogram"));
        assert!(text.contains("partstm_commit_latency_ns_bucket{le=\"0\"} 1"));
        // Cumulative: the le="7" bucket includes the zero below it.
        assert!(text.contains("partstm_commit_latency_ns_bucket{le=\"7\"} 3"));
        assert!(text.contains("partstm_commit_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("partstm_commit_latency_ns_count 4"));
        // Dots sanitized, prefix applied, no raw names leak.
        assert!(!text.contains("quiesce.windows"));
    }
}
