//! Wait-free power-of-two histograms.
//!
//! Recording a value is three relaxed `fetch_add`s (count, sum, bucket) —
//! no CAS loops, no locks, no ordering constraints — so a histogram can sit
//! on a sampled transaction hot path. Bucket *i* ≥ 1 covers values in
//! `[2^(i-1), 2^i)`; bucket 0 holds exact zeros; the top bucket absorbs
//! everything `≥ 2^62`. Quantiles therefore resolve to a power of two —
//! plenty for latency reporting (p50/p99 within 2×), and what buys the
//! wait-free record path.

use core::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Histogram`] (and a [`HistSnapshot`]).
pub const HIST_BUCKETS: usize = 64;

/// Maps a value to its bucket index.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` boundary).
/// The top bucket has no finite bound and reports `u64::MAX`.
#[inline]
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent histogram: 64 power-of-two buckets plus total count and
/// sum, all relaxed atomics. 528 bytes; share via `Arc` (see
/// [`crate::MetricsRegistry`]).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [0u64; HIST_BUCKETS].map(AtomicU64::new),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Wait-free: three relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded values (racy by nature — concurrent records may be
    /// mid-flight).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy. Concurrent recording keeps running;
    /// a record that lands mid-snapshot may show in `count` but not yet in
    /// its bucket (or vice versa) — bounded skew, never torn values.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, s) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = s.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see the module docs for bucket coverage).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Folds `other` into `self` (bucket-wise sums). Snapshots taken from
    /// different histograms of the same quantity merge into the aggregate
    /// distribution.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        // Wrapping, matching the recorder's relaxed `fetch_add`: a sum of
        // large raw values may exceed 64 bits either way.
        self.sum = self.sum.wrapping_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket at which the cumulative count reaches `q · count`. Resolves
    /// to a power of two; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_bound(i) as f64;
            }
        }
        bucket_bound(HIST_BUCKETS - 1) as f64
    }

    /// Median (see [`HistSnapshot::quantile`] for resolution).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`HistSnapshot::quantile`] for resolution).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_mapping_covers_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's bound is the last value still inside it.
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_bound(i)), i);
            assert_eq!(bucket_of(bucket_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // p50 of 1..=100 lands in the [33..64] bucket (cum 64 ≥ 50).
        assert_eq!(s.p50(), 63.0);
        assert_eq!(s.p99(), 127.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Empty histogram degrades to zeros.
        let e = Histogram::new().snapshot();
        assert_eq!(e.p50(), 0.0);
        assert_eq!(e.mean(), 0.0);
    }

    /// Satellite coverage: a multi-thread recording storm conserves the
    /// total count and the bucket-sum across concurrent recording, and
    /// per-thread snapshots merge to the same aggregate.
    #[test]
    fn concurrent_storm_conserves_counts_and_merges() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let shared = Arc::new(Histogram::new());
        let locals: Vec<Arc<Histogram>> =
            (0..THREADS).map(|_| Arc::new(Histogram::new())).collect();
        std::thread::scope(|s| {
            for (t, local) in locals.iter().enumerate() {
                let shared = Arc::clone(&shared);
                let local = Arc::clone(local);
                s.spawn(move || {
                    let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..PER_THREAD {
                        // xorshift values exercise every bucket range.
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = x >> (x % 64) as u32;
                        shared.record(v);
                        local.record(v);
                    }
                });
            }
        });
        let s = shared.snapshot();
        assert_eq!(s.count, (THREADS as u64) * PER_THREAD);
        assert_eq!(
            s.buckets.iter().sum::<u64>(),
            s.count,
            "every record landed in exactly one bucket"
        );
        // Merging the per-thread snapshots reproduces the shared aggregate
        // exactly: same values went into both sides.
        let mut merged = HistSnapshot::default();
        for l in &locals {
            merged.merge(&l.snapshot());
        }
        assert_eq!(merged, s);
    }
}
