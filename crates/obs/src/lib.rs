//! Observability primitives for the partitioned STM runtime.
//!
//! This crate is a dependency-free leaf: it knows nothing about
//! transactions or partitions, only about recording numeric facts cheaply
//! from many threads at once. Three building blocks:
//!
//! * [`FlightRecorder`] / [`EventRing`] — bounded, lock-free rings of
//!   timestamped [`Event`]s (the *flight recorder*). Producers overwrite
//!   the oldest entries; readers take a best-effort merged snapshot at any
//!   time without stopping producers. Per-thread lanes give transaction
//!   lifecycle events a contention-free single-producer path; a shared
//!   control ring collects the (rare) control-plane events from daemon
//!   threads.
//! * [`Histogram`] — 64 power-of-two buckets plus count and sum, recorded
//!   with relaxed atomics (wait-free, no CAS loops). Snapshots
//!   ([`HistSnapshot`]) merge and answer quantile queries at
//!   power-of-two resolution. One histogram costs 528 bytes.
//! * [`MetricsRegistry`] — named counters and histograms with
//!   get-or-create registration (mutexed, cold) and lock-free recording
//!   through the returned `Arc` handles; [`RegistrySnapshot`] is the
//!   mergeable, exportable view, rendered to Prometheus text exposition
//!   format by [`prometheus_text`].
//!
//! Event payloads are three bare `u64`s so the [`Event`] struct stays
//! `Copy` and ring slots stay lock-free; domain meanings (partition ids,
//! outcome codes, durations, `f64` scores as bits) are documented per
//! [`EventKind`] and decoded by [`render_event`] / the [`codes`] tables.

#![warn(missing_docs)]

mod hist;
mod prom;
mod registry;
mod ring;

pub use hist::{HistSnapshot, Histogram, HIST_BUCKETS};
pub use prom::prometheus_text;
pub use registry::{Counter, MetricsRegistry, RegistrySnapshot};
pub use ring::{render_event, Event, EventKind, EventRing, FlightRecorder};

use std::sync::OnceLock;
use std::time::Instant;

/// Microseconds since the process-wide observation epoch (the first call
/// to this function). All [`Event`] timestamps share this epoch, so
/// differences between any two events are meaningful.
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Domain code tables: small integers carried in [`Event`] payload words,
/// with their human-readable names for timeline rendering.
pub mod codes {
    /// Structural action completed (switch/resize/migrate succeeded).
    pub const OUTCOME_SWITCHED: u64 = 0;
    /// Structural action was a no-op (already in the requested state).
    pub const OUTCOME_UNCHANGED: u64 = 1;
    /// Structural action lost the flag race and was not attempted.
    pub const OUTCOME_CONTENDED: u64 = 2;
    /// Structural action rolled back: quiescence not reached in time.
    pub const OUTCOME_TIMED_OUT: u64 = 3;

    /// Name of a `OUTCOME_*` code.
    pub fn outcome_name(code: u64) -> &'static str {
        match code {
            OUTCOME_SWITCHED => "switched",
            OUTCOME_UNCHANGED => "unchanged",
            OUTCOME_CONTENDED => "contended",
            OUTCOME_TIMED_OUT => "timed-out",
            _ => "?",
        }
    }

    /// Abort on a write-lock conflict.
    pub const ABORT_WLOCK: u64 = 0;
    /// Abort on a visible-reader conflict.
    pub const ABORT_RLOCK: u64 = 1;
    /// Abort on read-set validation failure.
    pub const ABORT_VALIDATION: u64 = 2;
    /// Aborted by a writer's kill request (visible-read arbitration).
    pub const ABORT_KILLED: u64 = 3;
    /// Abort on a partition's switching/privatized flag.
    pub const ABORT_SWITCHING: u64 = 4;
    /// User-requested abort.
    pub const ABORT_USER: u64 = 5;

    /// Name of an `ABORT_*` code.
    pub fn abort_name(code: u64) -> &'static str {
        match code {
            ABORT_WLOCK => "wlock-conflict",
            ABORT_RLOCK => "rlock-conflict",
            ABORT_VALIDATION => "validation",
            ABORT_KILLED => "killed",
            ABORT_SWITCHING => "switching",
            ABORT_USER => "user",
            _ => "?",
        }
    }

    /// Controller action: split a hot subset out of a partition.
    pub const ACTION_SPLIT: u64 = 0;
    /// Controller action: merge a cold partition into another.
    pub const ACTION_MERGE: u64 = 1;
    /// Controller action: resize a partition's orec table in place.
    pub const ACTION_RESIZE: u64 = 2;
    /// Controller action: tear a hot slot subset out of a collection.
    pub const ACTION_TEAR: u64 = 3;
    /// Controller action: heal a torn slot subset back into its origin.
    pub const ACTION_HEAL: u64 = 4;

    /// Name of an `ACTION_*` code.
    pub fn action_name(code: u64) -> &'static str {
        match code {
            ACTION_SPLIT => "split",
            ACTION_MERGE => "merge",
            ACTION_RESIZE => "resize",
            ACTION_TEAR => "tear",
            ACTION_HEAL => "heal",
            _ => "?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn code_names_roundtrip() {
        assert_eq!(codes::outcome_name(codes::OUTCOME_TIMED_OUT), "timed-out");
        assert_eq!(codes::abort_name(codes::ABORT_VALIDATION), "validation");
        assert_eq!(codes::action_name(codes::ACTION_SPLIT), "split");
        assert_eq!(codes::action_name(codes::ACTION_TEAR), "tear");
        assert_eq!(codes::action_name(codes::ACTION_HEAL), "heal");
        assert_eq!(codes::outcome_name(99), "?");
    }
}
