//! Named metrics: get-or-create registration, lock-free recording,
//! mergeable snapshots.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, Histogram};

/// A monotonically increasing counter (relaxed atomics; share via `Arc`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Registration takes a mutex (cold: done once per metric, typically at
/// startup); the returned `Arc` handles record wait-free without touching
/// the registry again. Asking for an existing name returns the existing
/// instrument, so independent modules can share a metric by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    hists: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        // Recover from poisoning everywhere in this registry: the guarded
        // data is a grow-only name→instrument list, which no panic can
        // leave half-updated in a way that matters (the worst case is a
        // pushed entry whose Arc was never returned). Propagating the
        // poison instead would let one panicking recorder thread take
        // down every later metrics export.
        let mut g = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = g.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        g.push((name.to_owned(), Arc::clone(&c)));
        c
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.hists.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = g.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        g.push((name.to_owned(), Arc::clone(&h)));
        h
    }

    /// Point-in-time copy of every registered metric, in registration
    /// order. Recording continues concurrently (same skew contract as
    /// [`Histogram::snapshot`]).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            hists: self
                .hists
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// An owned, mergeable copy of a [`MetricsRegistry`]'s state — the unit
/// the exporters consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self` by metric name: counters add, histograms
    /// merge bucket-wise, names unknown to `self` are appended. Snapshots
    /// from per-process (or per-shard) registries of the same metrics
    /// merge into one aggregate view.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.hists.push((name.clone(), *h)),
            }
        }
    }

    /// The histogram snapshot named `name`, if registered.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The counter value named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("commits");
        let b = reg.counter("commits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("commits"), Some(3));
        let h1 = reg.histogram("lat");
        let h2 = reg.histogram("lat");
        h1.record(5);
        h2.record(7);
        assert_eq!(reg.snapshot().hist("lat").unwrap().count, 2);
        assert_eq!(reg.snapshot().counter("missing"), None);
        assert!(reg.snapshot().hist("missing").is_none());
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let reg = MetricsRegistry::new();
        reg.counter("ops").add(2);
        reg.histogram("lat").record(5);
        // Poison both mutexes the only way possible: panic while holding
        // the guard (simulates a recorder thread dying mid-registration).
        for _ in 0..2 {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _c = reg.counters.lock().unwrap();
                let _h = reg.hists.lock().unwrap();
                panic!("die holding the registry");
            }));
        }
        assert!(reg.counters.lock().is_err(), "mutex is actually poisoned");
        // Every entry point recovers the guard and keeps serving.
        reg.counter("ops").inc();
        reg.histogram("lat").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops"), Some(3));
        assert_eq!(snap.hist("lat").unwrap().count, 2);
    }

    #[test]
    fn snapshots_merge_by_name() {
        let a = MetricsRegistry::new();
        a.counter("ops").add(10);
        a.histogram("lat").record(100);
        let b = MetricsRegistry::new();
        b.counter("ops").add(5);
        b.counter("only_b").add(1);
        b.histogram("lat").record(200);
        b.histogram("depth").record(3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("ops"), Some(15));
        assert_eq!(m.counter("only_b"), Some(1));
        assert_eq!(m.hist("lat").unwrap().count, 2);
        assert_eq!(m.hist("lat").unwrap().sum, 300);
        assert_eq!(m.hist("depth").unwrap().count, 1);
    }
}
