//! Local stand-in for the `crossbeam-utils` crate (offline build; see the
//! root `Cargo.toml`). Provides only [`CachePadded`], the single item the
//! workspace uses.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that neighbouring values never
/// share a cache line (128 covers the adjacent-line prefetcher on x86-64,
/// matching the real crate's choice for that target).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_deref() {
        let padded = CachePadded::new(7u64);
        assert_eq!(std::mem::align_of_val(&padded), 128);
        assert_eq!(*padded, 7);
        assert_eq!(padded.into_inner(), 7);
    }
}
