//! Deterministic run configuration and RNG for the shim.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// Stable per-test seed derived from the test's name (FNV-1a), so every
/// run of a given test replays the same case sequence.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Prints the failing case's coordinates when a test body panics, since
/// the shim has no shrinking to report a minimal input.
pub struct CaseGuard {
    /// Test name.
    pub name: &'static str,
    /// Seed of the failing stream.
    pub seed: u64,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: test `{}` failed at case {} (seed {:#x}); \
                 rerun the test to replay deterministically",
                self.name, self.case, self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(TestRng::new(1).next_u64(), TestRng::new(2).next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("same"), seed_for("same"));
    }
}
