//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>` with sizes drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so a domain
        // smaller than `target` (caller bug) degrades instead of hanging.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates `BTreeSet`s of `element` values with a size in `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_band() {
        let mut rng = TestRng::new(5);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        assert_eq!(vec(0u8..10, 3).generate(&mut rng).len(), 3);
    }

    #[test]
    fn btree_set_distinct_and_sized() {
        let mut rng = TestRng::new(6);
        let strat = btree_set(0u32..50, 1..=4);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn btree_set_small_domain_terminates() {
        let mut rng = TestRng::new(7);
        // Domain of 2 values but asked for up to 2: must not spin forever.
        let strat = btree_set(0u32..2, 2..=2);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
