//! The [`Strategy`] trait and the primitive strategies the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, builds a dependent strategy from
    /// it with `f`, and generates the final value from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                // span == 0 means the full u64-sized domain; take raw bits.
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                (*self.start() as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers subnormals, infinities and NaNs, which
        // is exactly what the word-encoding round-trip tests want to see.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (used as `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u8..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let w = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let doubled = (1u64..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut r);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
        let dependent = (1usize..4).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..50 {
            let (n, k) = dependent.generate(&mut r);
            assert!(k < n);
        }
    }

    #[test]
    fn tuples_and_any() {
        let mut r = rng();
        let (a, b) = (0u8..3, 10u64..20).generate(&mut r);
        assert!(a < 3 && (10..20).contains(&b));
        let _: bool = any::<bool>().generate(&mut r);
        let _: f64 = any::<f64>().generate(&mut r);
        assert_eq!(Just(9).generate(&mut r), 9);
    }
}
