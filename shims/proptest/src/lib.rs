//! Local stand-in for the `proptest` crate (offline build; see the root
//! `Cargo.toml`). Source-compatible with the subset of proptest 1.x the
//! workspace's property tests use:
//!
//! * the `Strategy` trait with `prop_map` / `prop_flat_map`,
//! * integer-range and tuple strategies, `any` for primitives,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the deterministic seed and case index so it can be replayed exactly by
//! rerunning the test. Generation is driven by a SplitMix64 stream seeded
//! per test, so runs are reproducible across machines.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            let seed = $crate::test_runner::seed_for(stringify!($name));
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let __case_guard = $crate::test_runner::CaseGuard {
                    name: stringify!($name),
                    seed,
                    case,
                };
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($arg,)+) = strategy.generate(&mut rng);
                $body
                drop(__case_guard);
            }
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}
