//! Local stand-in for the `criterion` benchmark harness (offline build;
//! see the root `Cargo.toml`). Source-compatible with the subset of the
//! criterion 0.5 API the workspace's benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical pipeline it runs a short timed
//! warmup followed by a fixed measurement window and prints the mean
//! time per iteration. Good enough to keep benches compiling, runnable
//! and comparable across commits until the real crate can be vendored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one benchmark's measurement window.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Target wall-clock time for the warmup that sizes the window.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Measurement state handed to a benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the measurement
    /// window. The routine's return value is passed through
    /// [`std::hint::black_box`] so the optimizer cannot discard it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: discover roughly how many iterations fill the window.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (MEASURE_WINDOW.as_secs_f64() / per_iter).clamp(1.0, 1e9) as u64;

        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.iters == 0 {
        println!("{name:<48} (no measurement)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!("{name:<48} {ns:>12.1} ns/iter ({} iters)", bencher.iters);
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the full benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Runs one stand-alone benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }
}

/// Re-export for closures that still use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).into_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("in", 1), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
