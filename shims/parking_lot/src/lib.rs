//! Local stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! This build environment has no registry access, so the workspace patches
//! `parking_lot` to this shim (see the root `Cargo.toml`). It mirrors the
//! subset of the real API the workspace uses: `Mutex`/`RwLock` whose guard
//! methods do not return poison `Result`s. Poisoning is transparently
//! recovered, matching parking_lot's "no poisoning" semantics closely
//! enough for this workspace (a panicked critical section here at worst
//! leaves partially-updated auxiliary state, never STM metadata).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let r1 = l.read();
        let r2 = l.try_read();
        assert!(r2.is_some());
        assert!(l.try_write().is_none());
        drop((r1, r2));
        assert!(l.try_write().is_some());
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
