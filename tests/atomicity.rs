//! Cross-crate atomicity and opacity tests: the invariants that make an
//! STM an STM, exercised across partitions and configurations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partstm::core::{
    AcquireMode, CmPolicy, Granularity, PartitionConfig, ReadMode, ReaderArb, Stm,
};
use partstm::structures::Bank;

/// Bank conservation under every combination of read mode, acquire mode,
/// granularity and CM policy.
#[test]
fn bank_conservation_under_all_configurations() {
    for read_mode in [ReadMode::Invisible, ReadMode::Visible] {
        for acquire in [AcquireMode::Encounter, AcquireMode::Commit] {
            for granularity in [
                Granularity::Word,
                Granularity::Stripe { shift: 6 },
                Granularity::PartitionLock,
            ] {
                for cm in [CmPolicy::SuicideBackoff, CmPolicy::DelayThenAbort] {
                    let stm = Stm::new();
                    let cfg = PartitionConfig::named("bank")
                        .read_mode(read_mode)
                        .acquire(acquire)
                        .granularity(granularity)
                        .cm(cm);
                    let bank = Bank::new(stm.new_partition(cfg), 8, 500);
                    std::thread::scope(|s| {
                        for t in 0..4usize {
                            let ctx = stm.register_thread();
                            let bank = &bank;
                            s.spawn(move || {
                                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9);
                                for _ in 0..500 {
                                    r ^= r << 13;
                                    r ^= r >> 7;
                                    r ^= r << 17;
                                    ctx.run(|tx| {
                                        bank.transfer(
                                            tx,
                                            (r % 8) as usize,
                                            ((r >> 8) % 8) as usize,
                                            (r % 40) as i64,
                                        )
                                    });
                                }
                            });
                        }
                    });
                    assert_eq!(
                        bank.total_direct(),
                        4000,
                        "lost money under {read_mode:?}/{acquire:?}/{granularity:?}/{cm:?}"
                    );
                }
            }
        }
    }
}

/// Reader-wins arbitration also preserves atomicity.
#[test]
fn bank_conservation_reader_wins() {
    let stm = Stm::new();
    let cfg = PartitionConfig::named("bank")
        .read_mode(ReadMode::Visible)
        .reader_arb(ReaderArb::ReaderWins);
    let bank = Bank::new(stm.new_partition(cfg), 4, 100);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let ctx = stm.register_thread();
            let bank = &bank;
            s.spawn(move || {
                for i in 0..800u64 {
                    let from = ((i + t as u64) % 4) as usize;
                    ctx.run(|tx| bank.transfer(tx, from, (from + 1) % 4, 3));
                }
            });
        }
    });
    assert_eq!(bank.total_direct(), 400);
}

/// Opacity probe: maintain `y == 2 * x` under writers; concurrent readers
/// must never observe anything else — even transiently inside a
/// transaction attempt (zombie reads would break the arithmetic here).
#[test]
fn opacity_linked_invariant() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("pair"));
    let x = Arc::new(p.tvar(1u64));
    let y = Arc::new(p.tvar(2u64));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let ctx = stm.register_thread();
            let (x, y, stop) = (x.clone(), y.clone(), stop.clone());
            s.spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    v = v.wrapping_mul(31).wrapping_add(7) % 100_000;
                    ctx.run(|tx| {
                        tx.write(&x, v)?;
                        tx.write(&y, v * 2)?;
                        Ok(())
                    });
                }
            });
        }
        for _ in 0..2 {
            let ctx = stm.register_thread();
            let (x, y) = (x.clone(), y.clone());
            let stop = stop.clone();
            s.spawn(move || {
                for _ in 0..20_000 {
                    let (vx, vy) = ctx.run(|tx| {
                        let vx = tx.read(&x)?;
                        let vy = tx.read(&y)?;
                        // The invariant must hold *inside* the transaction
                        // too: with opacity no attempt ever sees a mixed
                        // snapshot that survives to this point.
                        assert_eq!(vy, vx * 2, "zombie snapshot observed");
                        Ok((vx, vy))
                    });
                    assert_eq!(vy, vx * 2);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}

/// Cross-partition atomicity: invariant spans two partitions with
/// different configurations.
#[test]
fn cross_partition_invariant_mixed_configs() {
    let stm = Stm::new();
    let pa = stm.new_partition(PartitionConfig::named("a").read_mode(ReadMode::Visible));
    let pb = stm.new_partition(PartitionConfig::named("b").granularity(Granularity::PartitionLock));
    let x = Arc::new(pa.tvar(500i64));
    let y = Arc::new(pb.tvar(500i64));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let ctx = stm.register_thread();
            let (x, y) = (x.clone(), y.clone());
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x51_7C_C1);
                for _ in 0..1000 {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let amt = (r % 20) as i64;
                    ctx.run(|tx| {
                        let vx = tx.read(&x)?;
                        let vy = tx.read(&y)?;
                        tx.write(&x, vx - amt)?;
                        tx.write(&y, vy + amt)?;
                        Ok(())
                    });
                }
            });
        }
        let ctx = stm.register_thread();
        let (x, y) = (x.clone(), y.clone());
        s.spawn(move || {
            for _ in 0..2000 {
                let sum = ctx.run(|tx| Ok(tx.read(&x)? + tx.read(&y)?));
                assert_eq!(sum, 1000);
            }
        });
    });
    assert_eq!(x.load_direct() + y.load_direct(), 1000);
}

/// Reconfiguration under fire: switching a partition's configuration while
/// writers hammer it must not lose a single update.
#[test]
fn config_switches_during_load_lose_nothing() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("hot"));
    let counter = Arc::new(p.tvar(0u64));
    let iters = 3000u64;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let ctx = stm.register_thread();
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..iters {
                    ctx.run(|tx| tx.modify(&counter, |v| v + 1).map(|_| ()));
                }
            });
        }
        let stm2 = stm.clone();
        let p2 = p.clone();
        s.spawn(move || {
            let configs = [
                (ReadMode::Visible, Granularity::Word),
                (ReadMode::Invisible, Granularity::PartitionLock),
                (ReadMode::Visible, Granularity::PartitionLock),
                (ReadMode::Invisible, Granularity::Word),
            ];
            for i in 0..40 {
                let mut cfg = p2.current_config();
                let (rm, g) = configs[i % 4];
                cfg.read_mode = rm;
                cfg.granularity = g;
                let _ = stm2.switch_partition(&p2, cfg);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });
    assert_eq!(counter.load_direct(), 4 * iters);
    assert!(p.generation() >= 4, "switches happened");
}
