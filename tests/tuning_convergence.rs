//! Does the runtime tuner actually learn? Convergence tests on workloads
//! with known-good configurations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm::core::{PVar, PartitionConfig, ReadMode, Stm};
use partstm::structures::{IntSet, TRbTree};
use partstm::tuning::{HillClimbPolicy, ThresholdPolicy, Thresholds};

fn fast_tuner() -> Arc<ThresholdPolicy> {
    Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
        window: 256,
        min_commits: 64,
        hysteresis: 2,
        ..Thresholds::default()
    }))
}

/// An update-only workload with long conflicting transactions (every
/// transaction scans a block of words and rewrites several). The threshold
/// policy must react: visible reads and/or coarser granularity.
#[test]
fn tuner_reacts_to_pure_update_contention() {
    let stm = Stm::new();
    stm.set_tuner(fast_tuner());
    let p = stm.new_partition(PartitionConfig::named("hot").tunable());
    let words: Arc<Vec<PVar<u64>>> = Arc::new((0..32).map(|_| p.tvar(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    // Condition-driven with a hard deadline: fixed durations flake under
    // CPU contention or contention-manager changes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let ctx = stm.register_thread();
            let (words, stop) = (words.clone(), stop.clone());
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let i = (r % 32) as usize;
                    ctx.run(|tx| {
                        // Long read phase over the whole block, then a
                        // write burst: high conflict probability. The sleep
                        // forces a reschedule mid-transaction so the
                        // conflict window spans other threads' commits even
                        // on a single-core host, where sub-microsecond
                        // transactions otherwise never interleave and no
                        // contention materializes for the tuner to see.
                        let mut sum = 0u64;
                        for w in words.iter() {
                            sum = sum.wrapping_add(tx.read(w)?);
                        }
                        std::thread::sleep(Duration::from_micros(50));
                        for off in 0..4 {
                            let w = &words[(i + off) % 32];
                            let v = tx.read(w)?;
                            tx.write(w, v.wrapping_add(sum | 1))?;
                        }
                        Ok(())
                    });
                }
            });
        }
        while p.generation() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let stats = p.stats();
    assert!(
        p.generation() > 0,
        "tuner must have reconfigured a 100%-update contended partition \
         (commits={} aborts={})",
        stats.commits,
        stats.aborts()
    );
    // Note: we deliberately do NOT assert on the *final* configuration.
    // The tuner is a feedback controller: switching to visible/coarse
    // lowers the abort rate, which can legitimately send it back toward
    // invisible/fine. The property under test is that it reacts at all;
    // which fixed point (if any) it reaches depends on the contention
    // manager's damping.
}

/// A read-only workload must stay on (or return to) invisible reads.
#[test]
fn tuner_keeps_read_mostly_invisible() {
    let stm = Stm::new();
    stm.set_tuner(fast_tuner());
    // Start from the "wrong" configuration on purpose.
    let p = stm.new_partition(
        PartitionConfig::named("cold")
            .read_mode(ReadMode::Visible)
            .tunable(),
    );
    let tree = TRbTree::new(p.clone());
    let ctx = stm.register_thread();
    for k in 0..2048u64 {
        ctx.run(|tx| tree.insert(tx, k).map(|_| ()));
    }
    drop(ctx);
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ctx = stm.register_thread();
            let (tree, stop) = (&tree, stop.clone());
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x2545_F491);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    ctx.run(|tx| tree.contains(tx, r % 2048).map(|_| ()));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        p.current_config().read_mode,
        ReadMode::Invisible,
        "read-only partition must end on invisible reads"
    );
}

/// The hill climber eventually settles every partition it manages and the
/// workload keeps running correctly across its probe switches.
#[test]
fn hillclimb_probes_do_not_break_correctness() {
    let stm = Stm::new();
    stm.set_tuner(Arc::new(HillClimbPolicy::new(256, 50)));
    let p = stm.new_partition(PartitionConfig::named("probe").tunable());
    let x = Arc::new(p.tvar(0u64));
    let iters = 4000u64;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let ctx = stm.register_thread();
            let x = x.clone();
            s.spawn(move || {
                for _ in 0..iters {
                    ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
                }
            });
        }
    });
    assert_eq!(x.load_direct(), 4 * iters, "no update lost across probes");
    assert!(
        p.generation() >= 6,
        "the hill climber must have probed several configs (gen={})",
        p.generation()
    );
}

/// Two partitions with opposite workloads end up with different
/// configurations — performance composability, the paper's core claim.
#[test]
fn opposite_partitions_diverge() {
    let stm = Stm::new();
    stm.set_tuner(fast_tuner());
    let hot = stm.new_partition(PartitionConfig::named("hot").tunable());
    let cold = stm.new_partition(PartitionConfig::named("cold").tunable());
    let counter = Arc::new(hot.tvar(0u64));
    let tree = TRbTree::new(cold.clone());
    let ctx = stm.register_thread();
    for k in 0..4096u64 {
        ctx.run(|tx| tree.insert(tx, k).map(|_| ()));
    }
    drop(ctx);
    // Run until the hot partition has actually been re-tuned (bounded by a
    // generous deadline so CPU contention from parallel test jobs cannot
    // flake the test). Stop as soon as the configuration diverges from its
    // initial value: the tuner is a feedback controller, and letting the
    // workload keep running after the switch lets the (now lower) abort
    // rate legitimately steer the config back to where it started — the
    // divergence we want to observe only stays observable if no further
    // evaluation windows fill after the first switch.
    let hot_initial = hot.current_config();
    let hard_deadline = Instant::now() + Duration::from_secs(10);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let ctx = stm.register_thread();
            let (hot, counter, hot_initial) = (hot.clone(), counter.clone(), hot_initial);
            s.spawn(move || {
                while hot.current_config() == hot_initial && Instant::now() < hard_deadline {
                    // Read-sleep-write stretches the conflict window across
                    // a reschedule so the counter is genuinely contended
                    // even on a single-core host (see
                    // tuner_reacts_to_pure_update_contention).
                    ctx.run(|tx| {
                        let v = tx.read(&counter)?;
                        std::thread::sleep(Duration::from_micros(50));
                        tx.write(&counter, v + 1)
                    });
                }
            });
        }
        for t in 0..3u64 {
            let ctx = stm.register_thread();
            let (tree, hot, hot_initial) = (&tree, hot.clone(), hot_initial);
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0xD134_2543);
                while hot.current_config() == hot_initial && Instant::now() < hard_deadline {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    ctx.run(|tx| tree.contains(tx, r % 4096).map(|_| ()));
                }
            });
        }
    });
    assert!(
        hot.generation() > 0,
        "hot partition never re-tuned within 10s"
    );
    let hot_cfg = hot.current_config();
    let cold_cfg = cold.current_config();
    assert_eq!(cold_cfg.read_mode, ReadMode::Invisible);
    assert!(
        hot_cfg != cold_cfg,
        "opposite workloads should not share a configuration: {hot_cfg:?}"
    );
}
