//! Runtime repartitioning end-to-end: the conserved-sum invariant under a
//! continuous split/merge/migration storm (the structural analogue of the
//! configuration switch-storm test in `pvar_bound_api.rs`), plus profiler
//! integration through real transactions.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm::core::profiler::bucket_of;
use partstm::core::{AccessProfiler, Migratable, PVar, PartitionConfig, Stm, SwitchOutcome};

/// Bank transfers while a background thread repeatedly splits the account
/// partition, migrates the rest after it, and merges everything back home.
/// Every partition view cached by an in-flight attempt must stay coherent
/// with the repartition protocol, and every binding load must resolve to a
/// partition whose orec table actually guards the variable — or a transfer
/// runs half under one partition and half under another and loses money.
#[test]
fn bank_conserves_total_under_split_merge_migration_storm() {
    const N: usize = 32;
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home"));
    let accounts: Vec<Arc<PVar<i64>>> = (0..N).map(|_| Arc::new(home.tvar(1_000))).collect();
    let expect = N as i64 * 1_000;
    let stop = Arc::new(AtomicBool::new(false));
    let storms = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        // Transfer threads on the bound API.
        for t in 0..3usize {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, Arc::clone(&stop));
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % N as u64) as usize;
                    let to = ((r >> 8) % N as u64) as usize;
                    let amt = (r % 90) as i64;
                    ctx.run(|tx| {
                        let f = tx.read(&accounts[from])?;
                        tx.write(&accounts[from], f - amt)?;
                        let v = tx.read(&accounts[to])?;
                        tx.write(&accounts[to], v + amt)?;
                        Ok(())
                    });
                }
            });
        }
        // Reader thread asserts the invariant mid-flight. `stop` is set
        // before the panic so the other loops wind down and the failure
        // surfaces instead of deadlocking the scope.
        {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, Arc::clone(&stop));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let total = ctx.run(|tx| {
                        let mut sum = 0i64;
                        for a in accounts.iter() {
                            sum += tx.read(a)?;
                        }
                        Ok(sum)
                    });
                    if total != expect {
                        stop.store(true, Ordering::Relaxed);
                        panic!("sum not conserved mid-flight: {total} != {expect}");
                    }
                }
            });
        }
        // Storm thread: split half the accounts out, migrate the other
        // half after them, merge everything back into `home` — repeat.
        {
            let stm2 = stm.clone();
            let home = Arc::clone(&home);
            let (accounts, stop, storms) = (&accounts, Arc::clone(&stop), Arc::clone(&storms));
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                while !stop.load(Ordering::Relaxed) {
                    let evens: Vec<&dyn Migratable> = accounts
                        .iter()
                        .step_by(2)
                        .map(|a| &**a as &dyn Migratable)
                        .collect();
                    let odds: Vec<&dyn Migratable> = accounts
                        .iter()
                        .skip(1)
                        .step_by(2)
                        .map(|a| &**a as &dyn Migratable)
                        .collect();
                    let all: Vec<&dyn Migratable> =
                        accounts.iter().map(|a| &**a as &dyn Migratable).collect();
                    let (side, o1) =
                        stm2.split_partition(&home, PartitionConfig::named("side"), &evens);
                    let o2 = stm2.migrate_pvars(&odds, &side);
                    let o3 = stm2.merge_partitions(&[&side], &home, &all);
                    if o1 == SwitchOutcome::Switched
                        && o2 == SwitchOutcome::Switched
                        && o3 == SwitchOutcome::Switched
                    {
                        storms.fetch_add(1, Ordering::Relaxed);
                    }
                    if storms.load(Ordering::Relaxed) >= 12 || Instant::now() > deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(total, expect, "sum conserved after the storm");
    assert!(
        storms.load(Ordering::Relaxed) > 0,
        "the storm must have completed at least one split/migrate/merge cycle"
    );
    for a in &accounts {
        assert_eq!(a.partition_id(), home.id(), "all accounts merged home");
    }
}

/// Orec-table resizes racing splits/migrates/merges on the *same*
/// partitions, under live transfer traffic: the switching-flag CAS
/// serializes the structural actions (losers observe `Contended` and roll
/// back cleanly), and no interleaving may lose money or strand a stale
/// table. The structural analogue of the resize-storm proptest, with real
/// concurrency between the control-plane actors themselves.
#[test]
fn resize_racing_split_and_migrate_conserves_total() {
    const N: usize = 48;
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home").orecs(64));
    let accounts: Vec<Arc<PVar<i64>>> = (0..N).map(|_| Arc::new(home.tvar(1_000))).collect();
    let expect = N as i64 * 1_000;
    let stop = Arc::new(AtomicBool::new(false));
    let resizes_done = Arc::new(AtomicUsize::new(0));
    let storms_done = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        // Transfer traffic on the bound API.
        for t in 0..2usize {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, Arc::clone(&stop));
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % N as u64) as usize;
                    let to = ((r >> 8) % N as u64) as usize;
                    let amt = (r % 90) as i64;
                    ctx.run(|tx| {
                        let f = tx.read(&accounts[from])?;
                        tx.write(&accounts[from], f - amt)?;
                        let v = tx.read(&accounts[to])?;
                        tx.write(&accounts[to], v + amt)?;
                        Ok(())
                    });
                }
            });
        }
        // Split/migrate/merge storm on `home` (as in the storm test).
        {
            let stm2 = stm.clone();
            let home = Arc::clone(&home);
            let (accounts, stop, storms_done) =
                (&accounts, Arc::clone(&stop), Arc::clone(&storms_done));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let evens: Vec<&dyn Migratable> = accounts
                        .iter()
                        .step_by(2)
                        .map(|a| &**a as &dyn Migratable)
                        .collect();
                    let all: Vec<&dyn Migratable> =
                        accounts.iter().map(|a| &**a as &dyn Migratable).collect();
                    let (side, o1) =
                        stm2.split_partition(&home, PartitionConfig::named("side"), &evens);
                    let o2 = stm2.merge_partitions(&[&side], &home, &all);
                    if o1 == SwitchOutcome::Switched && o2 == SwitchOutcome::Switched {
                        storms_done.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Resize storm on the same `home` partition: many attempts lose
        // the flag race against the splitter (`Contended`) — they must
        // roll back without a trace; winners swap the table live.
        {
            let stm3 = stm.clone();
            let home = Arc::clone(&home);
            let (stop, resizes_done) = (Arc::clone(&stop), Arc::clone(&resizes_done));
            s.spawn(move || {
                let ladder = [32usize, 256, 1024];
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    if stm3.resize_orecs(&home, ladder[i % ladder.len()]) == SwitchOutcome::Switched
                    {
                        resizes_done.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Let the three actors collide for a while, then wind down.
        let deadline = Instant::now() + Duration::from_secs(8);
        while Instant::now() < deadline
            && (resizes_done.load(Ordering::Relaxed) < 6 || storms_done.load(Ordering::Relaxed) < 3)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(total, expect, "sum conserved under resize/split races");
    assert!(
        resizes_done.load(Ordering::Relaxed) > 0,
        "at least one resize must have won its race"
    );
    assert!(
        storms_done.load(Ordering::Relaxed) > 0,
        "at least one split+merge cycle must have completed"
    );
    assert_eq!(
        home.resize_count(),
        resizes_done.load(Ordering::Relaxed) as u64
    );
}

/// Migration mid-traffic moves variables without losing updates even when
/// the destination keeps absorbing writes immediately after the switch.
#[test]
fn migration_during_writes_keeps_counter_exact() {
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a"));
    let b = stm.new_partition(PartitionConfig::named("b"));
    let x = Arc::new(a.tvar(0u64));
    let iters = 4_000u64;
    let threads = 3u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let ctx = stm.register_thread();
            let x = Arc::clone(&x);
            s.spawn(move || {
                for i in 0..iters {
                    ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
                    if t == 0 && i % 512 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Bounce the variable between partitions while counters run.
        let stm2 = stm.clone();
        let (a2, b2, x2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&x));
        s.spawn(move || {
            for i in 0..40 {
                let dst = if i % 2 == 0 { &b2 } else { &a2 };
                let _ = stm2.migrate_pvars(&[&*x2 as &dyn Migratable], dst);
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(x.load_direct(), threads * iters, "no update lost");
}

/// The sampled profiler reports real partition/bucket touches for real
/// transactions, and uninstalling stops the flow.
#[test]
fn profiler_reports_touches_of_real_transactions() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("p"));
    let q = stm.new_partition(PartitionConfig::named("q"));
    let x = p.tvar(0u64);
    let y = q.tvar(0u64);
    let prof = Arc::new(AccessProfiler::new(1, 1024)); // sample everything
    stm.set_profiler(Arc::clone(&prof));
    let ctx = stm.register_thread();
    for _ in 0..10 {
        ctx.run(|tx| {
            tx.modify(&x, |v| v + 1)?;
            let _ = tx.read(&y)?;
            Ok(())
        });
    }
    let samples = prof.drain();
    assert_eq!(samples.len(), 10, "period 1 samples every commit");
    let s = &samples[0];
    assert!(s.spans_partitions(), "both partitions touched");
    let tp = s
        .touched
        .iter()
        .find(|t| t.partition == p.id())
        .expect("partition p recorded");
    assert!(tp.writes >= 1 && tp.reads >= 1, "modify = read + write");
    assert_eq!(
        tp.buckets[0].bucket,
        bucket_of(Migratable::var_addr(&x)),
        "bucket matches the directory-side hash"
    );
    let tq = s
        .touched
        .iter()
        .find(|t| t.partition == q.id())
        .expect("partition q recorded");
    assert_eq!(tq.writes, 0, "y only read");

    stm.clear_profiler();
    ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
    assert!(
        prof.drain().is_empty(),
        "uninstalled profiler receives nothing"
    );
}
