//! The bound (`PVar`) access tier and the per-attempt partition-view
//! cache: a switch-storm stress test on the conserved-sum invariant, a
//! property test that the bound tier is observationally identical to the
//! raw (explicit-partition) tier, and view-cache diagnostics.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use partstm::core::{
    AcquireMode, Granularity, PVar, PartitionConfig, ReadMode, Stm, SwitchOutcome, TVar,
};
use partstm::structures::Bank;

/// Bank transfers under a continuous stream of configuration switches: the
/// partition view cached at first touch of each attempt must stay coherent
/// with the quiesce protocol, or a transfer could run half under one
/// granularity and half under another and lose money.
#[test]
fn bank_conserves_total_under_config_switch_storm() {
    let stm = Stm::new();
    let bank = Arc::new(Bank::new(
        stm.new_partition(PartitionConfig::named("switchy")),
        16,
        1_000,
    ));
    let expect = 16_000i64;
    let stop = Arc::new(AtomicBool::new(false));
    let switches = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // Transfer threads on the bound API.
        for t in 0..4usize {
            let ctx = stm.register_thread();
            let (bank, stop) = (Arc::clone(&bank), Arc::clone(&stop));
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % 16) as usize;
                    let to = ((r >> 8) % 16) as usize;
                    ctx.run(|tx| bank.transfer(tx, from, to, (r % 90) as i64));
                }
            });
        }
        // Reader thread asserts the invariant mid-flight until the
        // switcher calls the run over. `stop` is set *before* the
        // assertion can panic, so a conservation failure fails the test
        // instead of deadlocking the other loops.
        {
            let ctx = stm.register_thread();
            let (bank, stop) = (Arc::clone(&bank), Arc::clone(&stop));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let total = ctx.run(|tx| bank.total(tx));
                    if total != expect {
                        stop.store(true, Ordering::Relaxed);
                        panic!("sum not conserved: {total} != {expect}");
                    }
                }
            });
        }
        // Switcher cycles through disparate configurations as fast as the
        // quiesce protocol allows, and ends the run once enough switches
        // have landed (deadline-bounded so a stuck protocol cannot hang
        // the test).
        {
            let stm2 = stm.clone();
            let (bank, stop, switches) =
                (Arc::clone(&bank), Arc::clone(&stop), Arc::clone(&switches));
            s.spawn(move || {
                let configs = [
                    (ReadMode::Visible, AcquireMode::Encounter, Granularity::Word),
                    (
                        ReadMode::Invisible,
                        AcquireMode::Commit,
                        Granularity::PartitionLock,
                    ),
                    (
                        ReadMode::Visible,
                        AcquireMode::Commit,
                        Granularity::Stripe { shift: 6 },
                    ),
                    (
                        ReadMode::Invisible,
                        AcquireMode::Encounter,
                        Granularity::Word,
                    ),
                ];
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let part = bank.partition();
                    let mut cfg = part.current_config();
                    let (rm, aq, g) = configs[i % configs.len()];
                    i += 1;
                    cfg.read_mode = rm;
                    cfg.acquire = aq;
                    cfg.granularity = g;
                    if stm2.switch_partition(part, cfg) == SwitchOutcome::Switched {
                        switches.fetch_add(1, Ordering::Relaxed);
                    }
                    if switches.load(Ordering::Relaxed) >= 20
                        || std::time::Instant::now() > deadline
                    {
                        stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    assert_eq!(bank.total_direct(), expect);
    assert!(
        switches.load(Ordering::Relaxed) > 0,
        "the storm must have switched at least once"
    );
}

#[derive(Debug, Clone, Copy)]
enum VarOp {
    Write(u8, u64),
    Read(u8),
    Add(u8, u64),
}

fn var_op() -> impl Strategy<Value = VarOp> {
    (0..3u8, 0..8u8, 0..1_000u64).prop_map(|(kind, i, v)| match kind {
        0 => VarOp::Write(i, v),
        1 => VarOp::Read(i),
        _ => VarOp::Add(i, v),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bound tier must be observationally identical to the raw tier:
    /// the same op sequence over 8 variables — split across two partitions
    /// and grouped into transactions of three ops — produces identical
    /// read results and identical final states either way.
    #[test]
    fn bound_api_matches_raw_api(ops in proptest::collection::vec(var_op(), 1..120)) {
        // Bound world.
        let stm_b = Stm::new();
        let pb0 = stm_b.new_partition(PartitionConfig::named("b0"));
        let pb1 = stm_b.new_partition(PartitionConfig::named("b1").read_mode(ReadMode::Visible));
        let bound: Vec<PVar<u64>> = (0..8)
            .map(|i: usize| {
                if i.is_multiple_of(2) {
                    pb0.tvar(0u64)
                } else {
                    pb1.tvar(0u64)
                }
            })
            .collect();
        // Raw world: same partition assignment, named at every access.
        let stm_r = Stm::new();
        let pr0 = stm_r.new_partition(PartitionConfig::named("r0"));
        let pr1 = stm_r.new_partition(PartitionConfig::named("r1").read_mode(ReadMode::Visible));
        let raw: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(0u64)).collect();
        let part_of = |i: usize| if i.is_multiple_of(2) { &pr0 } else { &pr1 };

        let ctx_b = stm_b.register_thread();
        let ctx_r = stm_r.register_thread();
        for chunk in ops.chunks(3) {
            let out_b = ctx_b.run(|tx| {
                let mut reads = Vec::new();
                for op in chunk {
                    match *op {
                        VarOp::Write(i, v) => tx.write(&bound[i as usize], v)?,
                        VarOp::Read(i) => reads.push(tx.read(&bound[i as usize])?),
                        VarOp::Add(i, v) => {
                            reads.push(tx.modify(&bound[i as usize], |x| x.wrapping_add(v))?)
                        }
                    }
                }
                Ok(reads)
            });
            let out_r = ctx_r.run(|tx| {
                let mut reads = Vec::new();
                for op in chunk {
                    match *op {
                        VarOp::Write(i, v) => {
                            tx.write_raw(part_of(i as usize), &raw[i as usize], v)?
                        }
                        VarOp::Read(i) => {
                            reads.push(tx.read_raw(part_of(i as usize), &raw[i as usize])?)
                        }
                        VarOp::Add(i, v) => reads.push(tx.modify_raw(
                            part_of(i as usize),
                            &raw[i as usize],
                            |x| x.wrapping_add(v),
                        )?),
                    }
                }
                Ok(reads)
            });
            prop_assert_eq!(out_b, out_r, "tiers diverged inside a transaction");
        }
        for i in 0..8 {
            prop_assert_eq!(bound[i].load_direct(), raw[i].load_direct(), "final state var {}", i);
        }
    }
}

/// The cached generation is stable across an attempt and matches the
/// partition's generation (no switch can interleave, per the quiesce
/// protocol).
#[test]
fn cached_generation_is_stable_within_an_attempt() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("g"));
    let x = p.tvar(3u64);
    // Bump the generation once before measuring.
    let mut cfg = p.current_config();
    cfg.read_mode = ReadMode::Visible;
    assert!(stm.switch_partition(&p, cfg).switched());
    let ctx = stm.register_thread();
    ctx.run(|tx| {
        assert_eq!(tx.cached_generation(&p), None, "untouched partition");
        let _ = tx.read(&x)?;
        let g0 = tx.cached_generation(&p).expect("touched now");
        assert_eq!(g0, p.generation());
        for _ in 0..10 {
            let _ = tx.read(&x)?;
            assert_eq!(
                tx.cached_generation(&p),
                Some(g0),
                "view must not re-decode"
            );
        }
        Ok(())
    });
}
