//! Concurrent correctness of every transactional structure, including
//! under adaptive tuning (config switches mid-run).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use partstm::core::{PartitionConfig, Stm};
use partstm::structures::{IntSet, THashSet, TLinkedList, TRbTree, TSkipList};
use partstm::tuning::{ThresholdPolicy, Thresholds};

fn all_sets(stm: &Stm, tunable: bool) -> Vec<(&'static str, Box<dyn IntSet>)> {
    let mk = |name: &str| {
        let mut cfg = PartitionConfig::named(name);
        cfg.tune = tunable;
        stm.new_partition(cfg)
    };
    vec![
        (
            "linked-list",
            Box::new(TLinkedList::new(mk("list"))) as Box<dyn IntSet>,
        ),
        ("skip-list", Box::new(TSkipList::new(mk("skip")))),
        ("rb-tree", Box::new(TRbTree::new(mk("tree")))),
        ("hash-set", Box::new(THashSet::new(mk("hash"), 16))),
    ]
}

/// Contended mixed workload; validate the net-size invariant via success
/// return values, plus snapshot sanity.
fn contended_run(stm: &Stm, set: &dyn IntSet, name: &str) {
    let initial_len = set.snapshot_keys().len() as i64;
    let net = AtomicI64::new(0);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let ctx = stm.register_thread();
            let net = &net;
            let set = &set;
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..2500 {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let k = r % 24;
                    // Decorrelated op choice (high bits) vs key (low bits).
                    match (r >> 33) % 3 {
                        0 => {
                            if ctx.run(|tx| set.insert(tx, k)) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if ctx.run(|tx| set.remove(tx, k)) {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            ctx.run(|tx| set.contains(tx, k));
                        }
                    }
                }
            });
        }
    });
    let keys = set.snapshot_keys();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "{name}: snapshot must be sorted+unique");
    assert_eq!(
        keys.len() as i64 - initial_len,
        net.load(Ordering::Relaxed),
        "{name}: size change must equal net successful inserts"
    );
}

#[test]
fn all_structures_contended_default_config() {
    let stm = Stm::new();
    for (name, set) in all_sets(&stm, false) {
        contended_run(&stm, set.as_ref(), name);
    }
}

#[test]
fn all_structures_contended_under_adaptive_tuning() {
    let stm = Stm::new();
    stm.set_tuner(Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
        window: 256,
        min_commits: 64,
        hysteresis: 1,
        ..Thresholds::default()
    })));
    let sets = all_sets(&stm, true);
    // Phase 1: update-only hammering on a tiny range — update fraction ~1
    // and high contention must make the threshold tuner reconfigure.
    for (name, set) in &sets {
        let net = AtomicI64::new(0);
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let ctx = stm.register_thread();
                let (net, set) = (&net, set.as_ref());
                s.spawn(move || {
                    let mut r = (t + 1).wrapping_mul(0x9E37_79B9);
                    for _ in 0..3000 {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        let k = r % 4;
                        if (r >> 21) & 1 == 0 {
                            if ctx.run(|tx| set.insert(tx, k)) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if ctx.run(|tx| set.remove(tx, k)) {
                            net.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            set.snapshot_keys().len() as i64,
            net.load(Ordering::Relaxed),
            "{name}: hammer phase lost an update"
        );
    }
    let total_generations: u32 = stm.partitions().iter().map(|p| p.generation()).sum();
    assert!(
        total_generations > 0,
        "the tuner never switched any partition under a 100%-update hammer"
    );
    // Phase 2: the mixed workload must still be correct under whatever
    // configurations the tuner picked (and any further switches).
    for (name, set) in &sets {
        contended_run(&stm, set.as_ref(), name);
    }
}

/// Tree invariants hold after a concurrent battering.
#[test]
fn rbtree_invariants_after_concurrency() {
    let stm = Stm::new();
    let tree = TRbTree::new(stm.new_partition(PartitionConfig::named("t")));
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let ctx = stm.register_thread();
            let tree = &tree;
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0xA076_1D64_78BD_642F);
                for _ in 0..3000 {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let k = r % 512;
                    if r & 1 == 0 {
                        ctx.run(|tx| tree.insert(tx, k));
                    } else {
                        ctx.run(|tx| tree.remove(tx, k));
                    }
                }
            });
        }
    });
    tree.check_invariants()
        .expect("red-black invariants after concurrent mix");
}

/// Disjoint-range workload where the exact final contents are predictable.
#[test]
fn skiplist_disjoint_exactness() {
    let stm = Stm::new();
    let set = TSkipList::new(stm.new_partition(PartitionConfig::named("s")));
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let ctx = stm.register_thread();
            let set = &set;
            s.spawn(move || {
                let base = t * 1000;
                for k in base..base + 200 {
                    assert!(ctx.run(|tx| set.insert(tx, k)));
                }
                for k in (base..base + 200).step_by(3) {
                    assert!(ctx.run(|tx| set.remove(tx, k)));
                }
            });
        }
    });
    let expect: Vec<u64> = (0..8u64)
        .flat_map(|t| (t * 1000..t * 1000 + 200).filter(move |k| (k - t * 1000) % 3 != 0))
        .collect();
    assert_eq!(set.snapshot_keys(), expect);
}
