//! Hot-key tear/heal idempotence: a storm of repeated skew phase flips
//! tears the *same* celebrity keys out of a hash map and heals them back,
//! over and over, under concurrent mutation. Exercises the full slot-subset
//! repartition lifecycle (`Proposal::Tear` → torn partition →
//! `Proposal::Heal` → re-merge home) rather than the single round the
//! crate-level e2e test covers, and checks the three leak-shaped
//! invariants: conserved sums, parked binding references bounded by
//! partitions-ever (not `slots × migrations`), and every heal returning the
//! torn slots to the map's home partition.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm::core::{retired_binding_count, PartitionConfig, Stm};
use partstm::repart::{ArenaDirectory, ControllerConfig, RepartEvent, RepartitionController};
use partstm::structures::THashMap;

const KEYS: u64 = 4096;
const CELEBS: u64 = 3;
const INITIAL: u64 = 100;
/// Full tear→heal rounds the storm must complete.
const CYCLES: usize = 2;

#[test]
fn repeated_zipf_flips_tear_and_heal_idempotently() {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("table").orecs(256));
    let map = Arc::new(THashMap::new(Arc::clone(&part), KEYS as usize));
    {
        let ctx = stm.register_thread();
        for k in 0..KEYS {
            ctx.run(|tx| map.put(tx, k, INITIAL).map(|_| ()));
        }
    }
    let dir = Arc::new(ArenaDirectory::new());
    map.attach_directory(&*dir);
    let mut cfg = ControllerConfig::responsive();
    cfg.online.split_abort_rate = 0.02;
    cfg.online.split_hot_share = 0.30;
    let controller = RepartitionController::new(&stm, dir, cfg);

    let stop = Arc::new(AtomicBool::new(false));
    let skew = Arc::new(AtomicBool::new(true));
    let mut tears = 0usize;
    let mut heals = 0usize;
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let ctx = stm.register_thread();
            let (map, stop, skew) = (Arc::clone(&map), Arc::clone(&stop), Arc::clone(&skew));
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if skew.load(Ordering::Relaxed) {
                        // Zipf-head phase: transfers among the same three
                        // celebrity keys every cycle, holding the
                        // encounter lock across a reschedule so the skew
                        // is visible as contention on a one-core box.
                        let (from, to) = (r % CELEBS, (r >> 8) % CELEBS);
                        let amt = r % 50;
                        ctx.run(|tx| {
                            let f = map.get(tx, from)?.unwrap_or(0);
                            map.put(tx, from, f.wrapping_sub(amt))?;
                            std::thread::sleep(Duration::from_micros(50));
                            let v = map.get(tx, to)?.unwrap_or(0);
                            map.put(tx, to, v.wrapping_add(amt))?;
                            Ok(())
                        });
                    } else {
                        // Calm phase: uniform transfers — the mutation
                        // keeps running while the heal happens, and its
                        // write load lands almost entirely on the
                        // origin's slots so the torn subset's write share
                        // decays below the heal gate.
                        let (from, to) = (r % KEYS, (r >> 8) % KEYS);
                        let amt = r % 50;
                        ctx.run(|tx| {
                            let f = map.get(tx, from)?.unwrap_or(0);
                            map.put(tx, from, f.wrapping_sub(amt))?;
                            let v = map.get(tx, to)?.unwrap_or(0);
                            map.put(tx, to, v.wrapping_add(amt))?;
                            Ok(())
                        });
                    }
                }
            });
        }
        // Drive the controller from here and flip the phase on each
        // tear/heal edge: skew until it tears, calm until it heals, repeat.
        let checker = stm.register_thread();
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            controller.step();
            let events = controller.events();
            let t = events
                .iter()
                .filter(|e| matches!(e, RepartEvent::Tear { .. }))
                .count();
            let h = events
                .iter()
                .filter(|e| matches!(e, RepartEvent::Heal { .. }))
                .count();
            if t > tears {
                tears = t;
                skew.store(false, Ordering::Relaxed);
            }
            if h > heals {
                heals = h;
                // Mid-storm conservation check after every heal, while
                // the workers keep mutating.
                let total = checker.run(|tx| {
                    let mut sum = 0u64;
                    for k in 0..KEYS {
                        sum = sum.wrapping_add(map.get(tx, k)?.unwrap_or(0));
                    }
                    Ok(sum)
                });
                assert_eq!(total, KEYS * INITIAL, "sum not conserved after heal #{h}");
                if heals >= CYCLES {
                    break;
                }
                skew.store(true, Ordering::Relaxed);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    let events = controller.stop();
    assert!(
        tears >= CYCLES && heals >= CYCLES,
        "storm finished only {tears} tears / {heals} heals: {events:?}"
    );
    // Every tear moved a slot subset, never the whole structure; every heal
    // returned it to the map's home partition.
    for e in &events {
        match e {
            RepartEvent::Tear {
                moved, total_live, ..
            } => {
                assert!(*moved > 0 && *moved < *total_live / 2, "{e:?}");
            }
            RepartEvent::Heal { dst, moved, .. } => {
                assert_eq!(*dst, part.id(), "heal must re-merge home: {e:?}");
                assert!(*moved > 0, "{e:?}");
            }
            _ => {}
        }
    }
    assert_eq!(map.partition_of(), part.id(), "map home never moves");
    // Partition accounting: each tear attempt minted at most one fresh
    // torn partition (a timed-out attempt leaves a dead corpse and a
    // `Failed` event instead of a `Tear`), so the registry grows linearly
    // in control actions, and the parked binding list (deduplicated per
    // partition) is bounded by partitions-ever — not by the ~50 slots ×
    // CYCLES migrations the storm performed. This file holds exactly one
    // test, so the process-global parked list is entirely ours.
    let failed = events
        .iter()
        .filter(|e| matches!(e, RepartEvent::Failed { .. }))
        .count();
    let partitions = stm.partitions().len();
    assert!(
        partitions <= 1 + tears + failed,
        "unexpected partition growth: {partitions} for {tears} tears + {failed} failed attempts"
    );
    assert!(
        retired_binding_count() <= partitions,
        "parked refs leak: {} parked for {partitions} partitions",
        retired_binding_count()
    );

    let ctx = stm.register_thread();
    let total = ctx.run(|tx| {
        let mut sum = 0u64;
        for k in 0..KEYS {
            sum = sum.wrapping_add(map.get(tx, k)?.unwrap_or(0));
        }
        Ok(sum)
    });
    assert_eq!(total, KEYS * INITIAL, "sum not conserved after the storm");
}
