//! Failure injection: user panics, user-requested retries and pathological
//! closures must never leak locks, reader bits or arena slots — and a
//! failed *arena migration* or *privatization* (contention or quiesce
//! timeout) must leave the free list and every slot binding exactly as it
//! found them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use partstm::core::{
    fault, Abort, Arena, FaultPlan, FaultSite, Granularity, Handle, MigratableCollection,
    PartitionConfig, PrivatizeError, ReadMode, Stm, SwitchOutcome, TVar,
};
use partstm::structures::{Bank, THashMap};

/// Serializes the tests that install a process-global fault plan (the
/// plans are additionally scoped to their own `Stm` via
/// [`FaultPlan::for_stm`], so the *other* tests in this binary are immune
/// either way).
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[derive(Default)]
struct Node {
    v: TVar<u64>,
}

/// Panics mid-transaction on several threads while others run normally;
/// afterwards the partition must be fully unlocked and consistent.
#[test]
fn panics_under_concurrency_leak_nothing() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("p").granularity(Granularity::PartitionLock));
    let x = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        // Panicking threads: write then blow up (lock held at panic).
        for t in 0..3u64 {
            let ctx = stm.register_thread();
            let (p, x) = (p.clone(), x.clone());
            s.spawn(move || {
                for i in 0..50 {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.run(|tx| {
                            let v = x.read(tx, &p)?;
                            x.write(tx, &p, v + 1)?;
                            if i % 2 == 0 {
                                panic!("injected failure {t}/{i}");
                            }
                            Ok(())
                        })
                    }));
                    if i % 2 == 0 {
                        assert!(r.is_err(), "panic must propagate");
                    }
                }
            });
        }
        // Normal workers keep making progress throughout.
        for _ in 0..3 {
            let ctx = stm.register_thread();
            let (p, x) = (p.clone(), x.clone());
            s.spawn(move || {
                for _ in 0..500 {
                    ctx.run(|tx| tx.modify_raw(&p, &x, |v| v + 1).map(|_| ()));
                }
            });
        }
    });
    // Partition must be fully unlocked.
    let (locked, owners, _) = p.debug_scan();
    assert_eq!(locked, 0, "leaked locks owned by {owners:?}");
    // The panicking threads committed only their odd iterations (25 each).
    assert_eq!(x.load_direct(), 3 * 25 + 3 * 500);
}

/// Panics while holding visible-reader bits: the bits must be cleared so
/// writers are never blocked forever.
#[test]
fn panic_clears_visible_reader_bits() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("v").read_mode(ReadMode::Visible));
    let x = Arc::new(TVar::new(7u64));
    let ctx = stm.register_thread();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.run(|tx| {
            let _ = x.read(tx, &p)?; // sets our reader bit
            panic!("reader dies");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(r.is_err());
    let (_, _, _) = p.debug_scan();
    // A writer must succeed immediately (no stale reader bit to wait on).
    let ctx2 = stm.register_thread();
    let done = ctx2.run(|tx| {
        x.write(tx, &p, 8)?;
        Ok(true)
    });
    assert!(done);
    assert_eq!(x.load_direct(), 8);
}

/// Abort::retry storms with transactional allocations: no slot may leak
/// even when every attempt but the last aborts.
#[test]
fn retry_storms_do_not_leak_arena_slots() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("a"));
    let arena: Arc<Arena<Node>> = Arc::new(Arena::new());
    let total_commits = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ctx = stm.register_thread();
            let (p, arena, total_commits) = (p.clone(), arena.clone(), total_commits.clone());
            s.spawn(move || {
                let mut kept: Vec<Handle<Node>> = Vec::new();
                for i in 0..500u64 {
                    let mut attempts = 0;
                    let h = ctx.run(|tx| {
                        attempts += 1;
                        let h = arena.alloc(tx)?;
                        tx.write_raw(&p, &arena.get(h).v, t * 1000 + i)?;
                        if attempts < 3 {
                            return Err(Abort::retry());
                        }
                        Ok(h)
                    });
                    kept.push(h);
                    total_commits.fetch_add(1, Ordering::Relaxed);
                }
                // Free half of them again.
                for h in kept.drain(..).step_by(2) {
                    ctx.run(|tx| {
                        arena.free(tx, h);
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(total_commits.load(Ordering::Relaxed), 2000);
    // 2000 allocations committed, 1000 freed: exactly 1000 live.
    assert_eq!(arena.live(), 1000, "aborted attempts must not leak slots");
}

mod common;
use common::assert_all_bindings_in;

/// A contended arena migration (destination mid-switch) must roll back
/// without touching a single binding, the home, or the free list; the
/// retry after the contention clears must succeed completely.
#[test]
fn contended_arena_migration_rolls_back_bindings_and_freelist() {
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a"));
    let b = stm.new_partition(PartitionConfig::named("b"));
    let map = THashMap::new(Arc::clone(&a), 8);
    let ctx = stm.register_thread();
    for k in 0..32u64 {
        ctx.run(|tx| map.put(tx, k, k * 10).map(|_| ()));
    }
    // Free a few slots so the free list has entries to preserve.
    for k in (0..32u64).step_by(4) {
        ctx.run(|tx| map.delete(tx, k).map(|_| ()));
    }
    let live_before = map.live_nodes();
    let (ga, gb) = (a.generation(), b.generation());

    // Simulate a concurrent switch holding b's flag.
    b.debug_force_switch_flag(true);
    assert_eq!(stm.migrate_collection(&map, &b), SwitchOutcome::Contended);
    assert_eq!(map.partition_of(), a.id(), "home untouched");
    assert_all_bindings_in(&map, a.id(), "map");
    assert_eq!(a.generation(), ga, "no generation bump on rollback");
    assert_eq!(b.generation(), gb);
    assert_eq!(map.live_nodes(), live_before, "free list untouched");

    // Source-side contention behaves the same.
    a.debug_force_switch_flag(true);
    b.debug_force_switch_flag(false);
    assert_eq!(stm.migrate_collection(&map, &b), SwitchOutcome::Contended);
    assert_all_bindings_in(&map, a.id(), "map");
    a.debug_force_switch_flag(false);

    // Once clear, the same migration succeeds and the map still works:
    // recycled slots (from the free list the rollback preserved) come
    // back bound to the destination.
    assert_eq!(stm.migrate_collection(&map, &b), SwitchOutcome::Switched);
    assert_all_bindings_in(&map, b.id(), "map");
    for k in (0..32u64).step_by(4) {
        assert!(ctx.run(|tx| map.put_if_absent(tx, k, k * 10)));
    }
    assert_eq!(map.live_nodes(), 32);
    for k in 0..32u64 {
        assert_eq!(ctx.run(|tx| map.get(tx, k)), Some(k * 10));
    }
}

/// A quiesce timeout during an arena migration (one transaction refuses
/// to finish within the configured window) rolls the whole operation back
/// — flags cleared, home and every slot binding unchanged, free list
/// consistent — and the migration succeeds once the straggler commits.
/// Debug builds panic at the timeout site (a stuck transaction is a bug
/// worth a backtrace), so the rolled-back state is asserted from under
/// `catch_unwind`; release builds report `TimedOut` instead.
#[test]
fn quiesce_timeout_during_arena_migration_rolls_back() {
    let stm = Stm::builder()
        .quiesce_timeout(Duration::from_millis(100))
        .build();
    let a = stm.new_partition(PartitionConfig::named("a"));
    let b = stm.new_partition(PartitionConfig::named("b"));
    let map = Arc::new(THashMap::new(Arc::clone(&a), 8));
    {
        let ctx = stm.register_thread();
        for k in 0..16u64 {
            ctx.run(|tx| map.put(tx, k, 7).map(|_| ()));
        }
    }
    let in_txn = Arc::new(AtomicBool::new(false));
    let live_before = map.live_nodes();

    std::thread::scope(|s| {
        // The straggler: holds one transaction open well past the quiesce
        // timeout (sleeping inside a transaction — never do this in real
        // code; that is the point).
        {
            let ctx = stm.register_thread();
            let (map, in_txn) = (Arc::clone(&map), Arc::clone(&in_txn));
            s.spawn(move || {
                let mut slept = false;
                ctx.run(|tx| {
                    let v = map.get(tx, 3)?;
                    if !slept {
                        slept = true;
                        in_txn.store(true, Ordering::Release);
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    Ok(v)
                });
            });
        }
        while !in_txn.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.migrate_collection(&*map, &b)
        }));
        match outcome {
            // Debug builds: the timeout panics *after* rolling back.
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(msg.contains("could not quiesce"), "unexpected panic: {msg}");
            }
            // Release builds: rolled back and reported.
            Ok(outcome) => assert_eq!(outcome, SwitchOutcome::TimedOut),
        }
        assert_eq!(map.partition_of(), a.id(), "home untouched after timeout");
        assert_all_bindings_in(&*map, a.id(), "map");
        assert_eq!(map.live_nodes(), live_before, "free list untouched");
    });

    // Straggler gone: the same migration now succeeds and the map is
    // fully functional in its new home.
    assert_eq!(stm.migrate_collection(&*map, &b), SwitchOutcome::Switched);
    assert_all_bindings_in(&*map, b.id(), "map");
    let ctx = stm.register_thread();
    for k in 0..16u64 {
        assert_eq!(ctx.run(|tx| map.get(tx, k)), Some(7));
    }
}

/// Transactional allocate/free racing a flagged (mid-switch) partition:
/// every attempt aborts on the switching flag until it clears, and no
/// abort may leak or corrupt a free-list slot — afterwards the live count
/// is exact and the contents match.
#[test]
fn alloc_free_racing_flagged_window_keeps_freelist_consistent() {
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a"));
    let map = Arc::new(THashMap::new(Arc::clone(&a), 8));
    {
        let ctx = stm.register_thread();
        // Seed, then delete, so the free list has recyclable slots that
        // aborting allocations must hand back correctly.
        for k in 100..116u64 {
            ctx.run(|tx| map.put(tx, k, 1).map(|_| ()));
        }
        for k in 100..116u64 {
            ctx.run(|tx| map.delete(tx, k).map(|_| ()));
        }
    }
    assert_eq!(map.live_nodes(), 0);

    a.debug_force_switch_flag(true);
    let started = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let ctx = stm.register_thread();
            let (map, started) = (Arc::clone(&map), Arc::clone(&started));
            s.spawn(move || {
                started.store(true, Ordering::Release);
                // Each op allocates (insert) or frees (delete); while the
                // flag is held every attempt aborts and rolls its
                // allocation back.
                for k in 0..24u64 {
                    ctx.run(|tx| map.put(tx, k, k).map(|_| ()));
                    if k % 3 == 0 {
                        ctx.run(|tx| map.delete(tx, k).map(|_| ()));
                    }
                }
            });
        }
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Keep the window flagged while the worker burns attempts into it.
        std::thread::sleep(Duration::from_millis(60));
        a.debug_force_switch_flag(false);
    });

    let st = a.stats();
    assert!(
        st.aborts_switching > 0,
        "the flagged window must have rejected at least one attempt"
    );
    // 24 inserts, 8 deletes: exactly 16 live nodes, recycled slots and
    // all — and every key readable.
    assert_eq!(map.live_nodes(), 16, "free list consistent after the storm");
    let ctx = stm.register_thread();
    for k in 0..24u64 {
        let expect = if k % 3 == 0 { None } else { Some(k) };
        assert_eq!(ctx.run(|tx| map.get(tx, k)), expect);
    }
}

/// A contended orec resize (partition mid-switch) must report
/// `Contended` without touching the table, its versions, the generation
/// or any in-flight state — and succeed once the flag clears.
#[test]
fn contended_resize_rolls_back_table_exactly() {
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a").orecs(64));
    let x = Arc::new(a.tvar(5u64));
    let ctx = stm.register_thread();
    // Commit a few updates so orec versions are non-trivial.
    for _ in 0..10 {
        ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
    }
    let count = a.orec_count();
    let generation = a.generation();
    let (locked, _, maxv) = a.debug_scan();
    assert_eq!(locked, 0);

    a.debug_force_switch_flag(true);
    assert_eq!(stm.resize_orecs(&a, 4096), SwitchOutcome::Contended);
    a.debug_force_switch_flag(false);

    assert_eq!(a.orec_count(), count, "table size untouched");
    assert_eq!(a.generation(), generation, "no generation bump on rollback");
    assert_eq!(a.resize_count(), 0, "no resize recorded");
    let (locked2, _, maxv2) = a.debug_scan();
    assert_eq!((locked2, maxv2), (locked, maxv), "orec versions untouched");
    // Transactions keep running against the old table.
    assert_eq!(ctx.run(|tx| tx.modify(&x, |v| v + 1)), 16);

    // Once clear, the same resize succeeds.
    assert!(stm.resize_orecs(&a, 4096).switched());
    assert_eq!(a.orec_count(), 4096);
    assert_eq!(a.generation(), generation + 1);
    assert_eq!(ctx.run(|tx| tx.read(&x)), 16, "data survives the resize");
}

/// A quiesce timeout during an orec resize (a straggler transaction
/// refuses to finish within the window) rolls the resize back — flag
/// cleared, old table, old versions, old generation — and the straggler
/// commits exactly as if nothing had happened. Debug builds panic at the
/// timeout site (after rolling back); release builds report `TimedOut`.
#[test]
fn quiesce_timeout_during_resize_rolls_back() {
    let stm = Stm::builder()
        .quiesce_timeout(Duration::from_millis(100))
        .build();
    let a = stm.new_partition(PartitionConfig::named("a").orecs(64));
    let x = Arc::new(a.tvar(100u64));
    let count = a.orec_count();
    let generation = a.generation();
    let in_txn = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // The straggler: holds one update transaction open well past the
        // quiesce timeout (sleeping inside a transaction — never do this
        // in real code; that is the point).
        {
            let ctx = stm.register_thread();
            let (x, in_txn) = (Arc::clone(&x), Arc::clone(&in_txn));
            s.spawn(move || {
                let mut slept = false;
                ctx.run(|tx| {
                    let v = tx.read(&x)?;
                    if !slept {
                        slept = true;
                        in_txn.store(true, Ordering::Release);
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    tx.write(&x, v + 1)
                });
            });
        }
        while !in_txn.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| stm.resize_orecs(&a, 4096)));
        match outcome {
            // Debug builds: the timeout panics *after* rolling back.
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(msg.contains("could not quiesce"), "unexpected panic: {msg}");
            }
            // Release builds: rolled back and reported.
            Ok(outcome) => assert_eq!(outcome, SwitchOutcome::TimedOut),
        }
        assert_eq!(a.orec_count(), count, "old table still installed");
        assert_eq!(a.generation(), generation, "no generation bump");
        assert_eq!(a.resize_count(), 0);
    });

    // The straggler's transaction committed exactly once despite the
    // rolled-back resize racing it.
    assert_eq!(x.load_direct(), 101, "in-flight transaction exact");

    // Straggler gone: the same resize now succeeds and the data is fine.
    assert!(stm.resize_orecs(&a, 4096).switched());
    assert_eq!(a.orec_count(), 4096);
    let ctx = stm.register_thread();
    assert_eq!(ctx.run(|tx| tx.modify(&x, |v| v + 1)), 102);
}

/// A contended privatization (partition already mid-switch) reports
/// `Contended` without touching the config word, generation, orec table,
/// versions or any binding — and succeeds once the flag clears, with the
/// guard's private writes becoming transactional truth at republish.
#[test]
fn contended_privatize_rolls_back_exactly() {
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a").orecs(64));
    let map = THashMap::new(Arc::clone(&a), 8);
    let ctx = stm.register_thread();
    for k in 0..16u64 {
        ctx.run(|tx| map.put(tx, k, k).map(|_| ()));
    }
    let generation = a.generation();
    let count = a.orec_count();
    let (locked, _, maxv) = a.debug_scan();
    assert_eq!(locked, 0);

    a.debug_force_switch_flag(true);
    assert_eq!(stm.privatize(&a).unwrap_err(), PrivatizeError::Contended);
    a.debug_force_switch_flag(false);

    assert!(
        !a.is_privatized(),
        "failed attempt leaves no privatized bit"
    );
    assert_eq!(a.generation(), generation, "no generation bump on rollback");
    assert_eq!(a.orec_count(), count, "table untouched");
    let (locked2, _, maxv2) = a.debug_scan();
    assert_eq!((locked2, maxv2), (locked, maxv), "orec versions untouched");
    assert_all_bindings_in(&map, a.id(), "map");
    assert_eq!(a.stats().privatizations, 0, "nothing counted as a hold");
    // Transactions keep running against the rolled-back partition.
    assert_eq!(ctx.run(|tx| map.get(tx, 3)), Some(3));

    // Once clear, privatization succeeds; a guard-gated write is
    // transactional truth after republish.
    let g = stm.privatize(&a).expect("uncontended");
    map.bulk_put(&g, 99, 990);
    g.republish();
    assert_eq!(a.generation(), generation + 1);
    assert_eq!(ctx.run(|tx| map.get(tx, 99)), Some(990));
}

/// A quiesce timeout during privatization (a straggler transaction
/// refuses to finish within the window) rolls the attempt back — flags
/// cleared, old generation, partition fully transactional — and the
/// straggler commits exactly as if nothing had happened. Debug builds
/// panic at the timeout site (after rolling back); release builds report
/// `TimedOut`.
#[test]
fn quiesce_timeout_during_privatize_rolls_back() {
    let stm = Stm::builder()
        .quiesce_timeout(Duration::from_millis(100))
        .build();
    let a = stm.new_partition(PartitionConfig::named("a").orecs(64));
    let x = Arc::new(a.tvar(100u64));
    let generation = a.generation();
    let in_txn = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // The straggler: holds one update transaction open well past the
        // quiesce timeout (sleeping inside a transaction — never do this
        // in real code; that is the point).
        {
            let ctx = stm.register_thread();
            let (x, in_txn) = (Arc::clone(&x), Arc::clone(&in_txn));
            s.spawn(move || {
                let mut slept = false;
                ctx.run(|tx| {
                    let v = tx.read(&x)?;
                    if !slept {
                        slept = true;
                        in_txn.store(true, Ordering::Release);
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    tx.write(&x, v + 1)
                });
            });
        }
        while !in_txn.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| stm.privatize(&a)));
        match outcome {
            // Debug builds: the timeout panics *after* rolling back.
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(msg.contains("could not quiesce"), "unexpected panic: {msg}");
            }
            // Release builds: rolled back and reported.
            Ok(result) => assert_eq!(result.unwrap_err(), PrivatizeError::TimedOut),
        }
        assert!(!a.is_privatized(), "flags cleared by the rollback");
        assert_eq!(a.generation(), generation, "no generation bump");
        let st = a.stats();
        assert_eq!(st.privatize_rollbacks, 1, "rollback classified");
        assert_eq!(st.privatizations, 0, "no hold ever established");
        assert_eq!(st.republishes, 0);
    });

    // The straggler's transaction committed exactly once despite the
    // rolled-back privatization racing it.
    assert_eq!(x.load_direct(), 101, "in-flight transaction exact");
    // The partition is fully transactional again.
    let ctx = stm.register_thread();
    assert_eq!(ctx.run(|tx| tx.modify(&x, |v| v + 1)), 102);

    // Straggler gone: privatization now succeeds and the private write
    // is transactional truth after republish.
    let g = stm.privatize(&a).expect("straggler gone");
    g.write(&x, 500);
    g.republish();
    assert_eq!(a.generation(), generation + 1);
    assert_eq!(ctx.run(|tx| tx.read(&x)), 500);
}

/// Privatize/republish cycles racing orec-resize storms, whole-collection
/// migrations and live transfer traffic: every control-plane pair
/// serializes on the switching bit (`Contended` bounces are allowed and
/// retried), no combination corrupts a binding, and the bank's conserved
/// sum survives the whole mêlée.
#[test]
fn privatize_vs_repartition_storm_conserves_sum() {
    const ACCOUNTS: usize = 32;
    let stm = Stm::new();
    let a = stm.new_partition(PartitionConfig::named("a").orecs(64));
    let b = stm.new_partition(PartitionConfig::named("b").orecs(64));
    let bank = Bank::new(Arc::clone(&a), ACCOUNTS, 100);
    let stop = AtomicBool::new(false);
    let privatized = AtomicU64::new(0);
    let migrated = AtomicU64::new(0);
    let resized = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Transfer traffic for the whole storm.
        for t in 0..2u64 {
            let ctx = stm.register_thread();
            let (bank, stop) = (&bank, &stop);
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % ACCOUNTS as u64) as usize;
                    let to = ((r >> 8) % ACCOUNTS as u64) as usize;
                    ctx.run(|tx| bank.transfer(tx, from, to, (r % 30) as i64));
                }
            });
        }
        let mut storms = Vec::new();
        // Orec-resize storm on the original home.
        {
            let (stm, a, resized) = (&stm, &a, &resized);
            storms.push(s.spawn(move || {
                for i in 0..40 {
                    let size = if i % 2 == 0 { 256 } else { 64 };
                    if stm.resize_orecs(a, size).switched() {
                        resized.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }));
        }
        // Migration storm: bounce the bank between the two partitions.
        {
            let (stm, bank, a, b, migrated) = (&stm, &bank, &a, &b, &migrated);
            storms.push(s.spawn(move || {
                for i in 0..20 {
                    let dst = if i % 2 == 0 { b } else { a };
                    if stm.migrate_collection(bank, dst).switched() {
                        migrated.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }));
        }
        // Privatization storm: grab whichever partition the bank calls
        // home, compact it (sum-preserving), republish.
        {
            let (stm, bank, privatized) = (&stm, &bank, &privatized);
            storms.push(s.spawn(move || {
                for _ in 0..30 {
                    let home = bank.home_partition();
                    match stm.privatize(&home) {
                        Ok(g) => {
                            // The hold pins the home: a migration of the
                            // bank contends until republish, so `covers`
                            // is stable for the guard's lifetime. It can
                            // still be false when a migration completed
                            // between reading `home` and flagging it — in
                            // which case the hold owns an empty partition
                            // and the compaction is skipped.
                            if g.covers(&bank.home_partition()) {
                                let total = bank.bulk_total(&g);
                                let n = ACCOUNTS as i64;
                                let (each, rem) = (total / n, total % n);
                                bank.bulk_load(&g, |i| each + i64::from((i as i64) < rem));
                            }
                            g.republish();
                            privatized.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(PrivatizeError::Contended) => std::thread::yield_now(),
                        Err(e) => panic!("privatize: {e}"),
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }));
        }
        for h in storms {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        bank.total_direct(),
        ACCOUNTS as i64 * 100,
        "sum conserved through the storm"
    );
    assert!(privatized.load(Ordering::Relaxed) > 0, "some holds landed");
    assert!(resized.load(Ordering::Relaxed) > 0, "some resizes landed");
    assert!(
        migrated.load(Ordering::Relaxed) > 0,
        "some migrations landed"
    );
    // All bindings agree on wherever the last migration left the bank.
    assert_all_bindings_in(&bank, bank.partition_of(), "bank");
}

/// The kill-based quiesce rescue: a worker wedges *inside* a transaction
/// while holding encounter locks (via the deterministic fault plan — the
/// stall polls its kill flag, modelling a transaction stuck in engine
/// wait loops, not a descheduled thread). A migration's quiesce must
/// cross its soft deadline, kill the wedged attempt, and complete —
/// instead of burning the full 10 s hard deadline and rolling back. The
/// killed worker retries cleanly: locks released, sum conserved.
#[test]
fn kill_rescue_unwedges_quiesce_within_soft_deadline() {
    const ACCOUNTS: usize = 16;
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let soft = Duration::from_millis(250);
    let stm = Stm::builder()
        .quiesce_timeout(Duration::from_secs(10))
        .kill_after(soft)
        .build();
    let a = stm.new_partition(PartitionConfig::named("a"));
    let b = stm.new_partition(PartitionConfig::named("b"));
    let bank = Bank::new(Arc::clone(&a), ACCOUNTS, 100);
    // Exactly one stall, far longer than the soft deadline and far
    // shorter than the hard one times nothing — only the kill can clear
    // it before the 30 s budget.
    let plan = fault::install(
        FaultPlan::new(0x0FEE_1BAD)
            .for_stm(&stm)
            .stall_holding_locks(1000, Duration::from_secs(30))
            .limit(FaultSite::StallHoldingLocks, 1),
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        {
            let ctx = stm.register_thread();
            let (bank, stop) = (&bank, &stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    i += 1;
                    let from = (i % ACCOUNTS as u64) as usize;
                    let to = ((i * 7 + 3) % ACCOUNTS as u64) as usize;
                    ctx.run(|tx| bank.transfer(tx, from, to, 5));
                }
            });
        }
        // Wait until the worker is wedged holding a lock.
        while plan.injected(FaultSite::StallHoldingLocks) == 0 {
            std::thread::yield_now();
        }
        let t0 = std::time::Instant::now();
        let outcome = stm.migrate_collection(&bank, &b);
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Release);
        assert_eq!(outcome, SwitchOutcome::Switched, "rescue must unwedge");
        // Well past the soft deadline (the kill had to fire) but nowhere
        // near the 10 s hard deadline (which would also panic this debug
        // build): the rescue resolved it, not the timeout.
        assert!(
            elapsed >= soft,
            "quiesce finished in {elapsed:?} — nothing was ever wedged?"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "rescue too slow: {elapsed:?}"
        );
    });
    fault::clear();
    let killed: u64 = stm
        .partitions()
        .iter()
        .map(|p| p.stats().aborts_killed)
        .sum();
    assert!(killed >= 1, "the wedged attempt must die as Killed");
    // The killed attempt leaked nothing and its retry preserved the sum.
    for p in stm.partitions() {
        let (locked, owners, _) = p.debug_scan();
        assert_eq!(locked, 0, "{}: leaked locks owned by {owners:?}", p.name());
    }
    assert_eq!(bank.total_direct(), ACCOUNTS as i64 * 100, "sum conserved");
    assert_all_bindings_in(&bank, b.id(), "bank");
    // The control plane is healthy again: the next action needs no rescue.
    assert_eq!(stm.migrate_collection(&bank, &a), SwitchOutcome::Switched);
    let ctx = stm.register_thread();
    ctx.run(|tx| bank.transfer(tx, 0, 1, 1));
    assert_eq!(bank.total_direct(), ACCOUNTS as i64 * 100);
}

/// Deterministic mid-transaction panics (the `MidTxPanic` fault site) on
/// a live workload: every injected death unwinds through the `Drop`
/// rollback, leaking no locks and committing nothing.
#[test]
fn injected_mid_tx_panics_leak_nothing() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("p"));
    let x = Arc::new(p.tvar(0u64));
    let plan = fault::install(FaultPlan::new(3).for_stm(&stm).mid_tx_panic(400));
    let ctx = stm.register_thread();
    let mut committed = 0u64;
    for _ in 0..100 {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()))
        }));
        if r.is_ok() {
            committed += 1;
        }
    }
    fault::clear();
    assert!(
        plan.injected(FaultSite::MidTxPanic) > 0,
        "the plan must have fired at 400‰"
    );
    assert!(committed > 0, "some attempts must dodge the plan");
    let (locked, owners, _) = p.debug_scan();
    assert_eq!(locked, 0, "leaked locks owned by {owners:?}");
    assert_eq!(
        x.load_direct(),
        committed,
        "killed attempts published nothing"
    );
}

/// A closure that reads, then decides to retry until a condition appears
/// (user-level polling): progress and correct final state.
#[test]
fn user_retry_until_condition() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("c"));
    let flag = Arc::new(TVar::new(false));
    let value = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        let ctx = stm.register_thread();
        let (p1, flag1, value1) = (p.clone(), flag.clone(), value.clone());
        let waiter = s.spawn(move || {
            ctx.run(|tx| {
                if !flag1.read(tx, &p1)? {
                    return Err(Abort::retry()); // backoff + retry
                }
                value1.read(tx, &p1)
            })
        });
        let ctx2 = stm.register_thread();
        let (p2, flag2, value2) = (p.clone(), flag.clone(), value.clone());
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            ctx2.run(|tx| {
                value2.write(tx, &p2, 99)?;
                flag2.write(tx, &p2, true)?;
                Ok(())
            });
        });
        assert_eq!(
            waiter.join().unwrap(),
            99,
            "waiter sees both writes atomically"
        );
    });
}
