//! Failure injection: user panics, user-requested retries and pathological
//! closures must never leak locks, reader bits or arena slots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use partstm::core::{Abort, Arena, Granularity, Handle, PartitionConfig, ReadMode, Stm, TVar};

#[derive(Default)]
struct Node {
    v: TVar<u64>,
}

/// Panics mid-transaction on several threads while others run normally;
/// afterwards the partition must be fully unlocked and consistent.
#[test]
fn panics_under_concurrency_leak_nothing() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("p").granularity(Granularity::PartitionLock));
    let x = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        // Panicking threads: write then blow up (lock held at panic).
        for t in 0..3u64 {
            let ctx = stm.register_thread();
            let (p, x) = (p.clone(), x.clone());
            s.spawn(move || {
                for i in 0..50 {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.run(|tx| {
                            let v = x.read(tx, &p)?;
                            x.write(tx, &p, v + 1)?;
                            if i % 2 == 0 {
                                panic!("injected failure {t}/{i}");
                            }
                            Ok(())
                        })
                    }));
                    if i % 2 == 0 {
                        assert!(r.is_err(), "panic must propagate");
                    }
                }
            });
        }
        // Normal workers keep making progress throughout.
        for _ in 0..3 {
            let ctx = stm.register_thread();
            let (p, x) = (p.clone(), x.clone());
            s.spawn(move || {
                for _ in 0..500 {
                    ctx.run(|tx| tx.modify_raw(&p, &x, |v| v + 1).map(|_| ()));
                }
            });
        }
    });
    // Partition must be fully unlocked.
    let (locked, owners, _) = p.debug_scan();
    assert_eq!(locked, 0, "leaked locks owned by {owners:?}");
    // The panicking threads committed only their odd iterations (25 each).
    assert_eq!(x.load_direct(), 3 * 25 + 3 * 500);
}

/// Panics while holding visible-reader bits: the bits must be cleared so
/// writers are never blocked forever.
#[test]
fn panic_clears_visible_reader_bits() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("v").read_mode(ReadMode::Visible));
    let x = Arc::new(TVar::new(7u64));
    let ctx = stm.register_thread();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.run(|tx| {
            let _ = x.read(tx, &p)?; // sets our reader bit
            panic!("reader dies");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(r.is_err());
    let (_, _, _) = p.debug_scan();
    // A writer must succeed immediately (no stale reader bit to wait on).
    let ctx2 = stm.register_thread();
    let done = ctx2.run(|tx| {
        x.write(tx, &p, 8)?;
        Ok(true)
    });
    assert!(done);
    assert_eq!(x.load_direct(), 8);
}

/// Abort::retry storms with transactional allocations: no slot may leak
/// even when every attempt but the last aborts.
#[test]
fn retry_storms_do_not_leak_arena_slots() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("a"));
    let arena: Arc<Arena<Node>> = Arc::new(Arena::new());
    let total_commits = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ctx = stm.register_thread();
            let (p, arena, total_commits) = (p.clone(), arena.clone(), total_commits.clone());
            s.spawn(move || {
                let mut kept: Vec<Handle<Node>> = Vec::new();
                for i in 0..500u64 {
                    let mut attempts = 0;
                    let h = ctx.run(|tx| {
                        attempts += 1;
                        let h = arena.alloc(tx)?;
                        tx.write_raw(&p, &arena.get(h).v, t * 1000 + i)?;
                        if attempts < 3 {
                            return Err(Abort::retry());
                        }
                        Ok(h)
                    });
                    kept.push(h);
                    total_commits.fetch_add(1, Ordering::Relaxed);
                }
                // Free half of them again.
                for h in kept.drain(..).step_by(2) {
                    ctx.run(|tx| {
                        arena.free(tx, h);
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(total_commits.load(Ordering::Relaxed), 2000);
    // 2000 allocations committed, 1000 freed: exactly 1000 live.
    assert_eq!(arena.live(), 1000, "aborted attempts must not leak slots");
}

/// A closure that reads, then decides to retry until a condition appears
/// (user-level polling): progress and correct final state.
#[test]
fn user_retry_until_condition() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("c"));
    let flag = Arc::new(TVar::new(false));
    let value = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        let ctx = stm.register_thread();
        let (p1, flag1, value1) = (p.clone(), flag.clone(), value.clone());
        let waiter = s.spawn(move || {
            ctx.run(|tx| {
                if !flag1.read(tx, &p1)? {
                    return Err(Abort::retry()); // backoff + retry
                }
                value1.read(tx, &p1)
            })
        });
        let ctx2 = stm.register_thread();
        let (p2, flag2, value2) = (p.clone(), flag.clone(), value.clone());
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            ctx2.run(|tx| {
                value2.write(tx, &p2, 99)?;
                flag2.write(tx, &p2, true)?;
                Ok(())
            });
        });
        assert_eq!(
            waiter.join().unwrap(),
            99,
            "waiter sees both writes atomically"
        );
    });
}
