//! Structure-aware live migration end-to-end: arena-backed structures
//! (linked list, rb-tree, skip list, hash set, queue) keep their contents
//! and invariants while a storm thread splits them into fresh partitions
//! and migrates them back home, all under concurrent mutation — the
//! collection-level analogue of the flat-PVar storm in `repartition.rs`.
//!
//! One-core note: mutator transactions stretch their conflict window
//! across a reschedule every few ops (the established pattern from
//! `tuning_convergence.rs`), so the storms genuinely overlap in-flight
//! transactions instead of slotting between them.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm::core::{MigratableCollection, PartitionConfig, Stm, SwitchOutcome, TxResult};
use partstm::structures::{IntSet, THashMap, THashSet, TLinkedList, TQueue, TRbTree, TSkipList};

mod common;
use common::assert_all_bindings_in;

/// Contended op mix on a tiny key range under a split/migrate-home storm:
/// the set's size must equal the net successful inserts, the snapshot must
/// be sorted/unique/in-range, and after the last migration home every
/// binding must be back in the home partition.
fn storm_intset<S>(make: impl FnOnce(Arc<partstm::core::Partition>) -> S, what: &str)
where
    S: IntSet + MigratableCollection + 'static,
{
    const KEYS: u64 = 16;
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home"));
    let set = Arc::new(make(Arc::clone(&home)));
    let net = AtomicI64::new(0);
    let stop = AtomicBool::new(false);
    let storms = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..3u64 {
            let ctx = stm.register_thread();
            let (set, stop, net) = (&set, &stop, &net);
            s.spawn(move || {
                let mut state = 0x9e37_79b9 ^ (t + 1);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = state % KEYS;
                    i += 1;
                    let stretch = i.is_multiple_of(7);
                    if (state >> 17) & 1 == 0 {
                        let ok = ctx.run(|tx| {
                            let r = set.insert(tx, key)?;
                            if stretch {
                                // Hold the conflict window across a
                                // reschedule (one-core contention).
                                std::thread::yield_now();
                            }
                            Ok(r)
                        });
                        if ok {
                            net.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if ctx.run(|tx| set.remove(tx, key)) {
                        net.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Storm thread: split the whole collection out, then migrate it
        // home — repeat until enough full cycles landed.
        {
            let stm2 = stm.clone();
            let (set, home, stop, storms) = (&set, &home, &stop, &storms);
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(8);
                let mut seq = 0;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let (_side, o1) =
                        stm2.split_collection(&**set, PartitionConfig::named(format!("side{seq}")));
                    let o2 = stm2.migrate_collection(&**set, home);
                    if o1 == SwitchOutcome::Switched && o2 == SwitchOutcome::Switched {
                        storms.fetch_add(1, Ordering::Relaxed);
                    }
                    if storms.load(Ordering::Relaxed) >= 12 || Instant::now() > deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                    // Let the mutators accumulate real traffic between
                    // cycles, so migrations land on busy structures.
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
    });

    assert!(
        storms.load(Ordering::Relaxed) > 0,
        "{what}: no split+migrate-home cycle completed"
    );
    let keys = set.snapshot_keys();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "{what}: snapshot must be sorted and unique");
    assert!(keys.iter().all(|&k| k < KEYS), "{what}: key out of range");
    assert_eq!(
        keys.len() as i64,
        net.load(Ordering::Relaxed),
        "{what}: size must equal net successful inserts"
    );
    assert_all_bindings_in(&*set, home.id(), what);
}

#[test]
fn linkedlist_conserves_under_migration_storm() {
    storm_intset(TLinkedList::new, "linked list");
}

#[test]
fn rbtree_conserves_under_migration_storm() {
    storm_intset(TRbTree::new, "rb-tree");
}

#[test]
fn skiplist_conserves_under_migration_storm() {
    storm_intset(TSkipList::new, "skip list");
}

#[test]
fn hashset_conserves_under_migration_storm() {
    storm_intset(|p| THashSet::new(p, 8), "hash set");
}

/// Producer/consumer queue under the storm: every pushed value is popped
/// exactly once (conserved sums), FIFO per producer is preserved by the
/// queue itself, and the queue ends fully migrated home.
#[test]
fn queue_conserves_items_under_migration_storm() {
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home"));
    let q: Arc<TQueue<u64>> = Arc::new(TQueue::new(Arc::clone(&home)));
    let stop = AtomicBool::new(false);
    let storms = AtomicUsize::new(0);
    let pushed = AtomicI64::new(0);
    let popped = AtomicI64::new(0);
    let sum_in = AtomicI64::new(0);
    let sum_out = AtomicI64::new(0);

    std::thread::scope(|s| {
        // One producer, one consumer, one storm.
        {
            let ctx = stm.register_thread();
            let (q, stop, pushed, sum_in) = (&q, &stop, &pushed, &sum_in);
            s.spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    ctx.run(|tx| {
                        q.push_back(tx, v)?;
                        if v.is_multiple_of(5) {
                            std::thread::yield_now();
                        }
                        Ok(())
                    });
                    pushed.fetch_add(1, Ordering::Relaxed);
                    sum_in.fetch_add(v as i64, Ordering::Relaxed);
                    v += 1;
                }
            });
        }
        {
            let ctx = stm.register_thread();
            let (q, stop, popped, sum_out) = (&q, &stop, &popped, &sum_out);
            s.spawn(move || loop {
                match ctx.run(|tx| q.pop_front(tx)) {
                    Some(v) => {
                        popped.fetch_add(1, Ordering::Relaxed);
                        sum_out.fetch_add(v as i64, Ordering::Relaxed);
                    }
                    None => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
        {
            let stm2 = stm.clone();
            let (q, home, stop, storms) = (&q, &home, &stop, &storms);
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(8);
                let mut seq = 0;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let (_side, o1) =
                        stm2.split_collection(&**q, PartitionConfig::named(format!("qside{seq}")));
                    let o2 = stm2.migrate_collection(&**q, home);
                    if o1 == SwitchOutcome::Switched && o2 == SwitchOutcome::Switched {
                        storms.fetch_add(1, Ordering::Relaxed);
                    }
                    if storms.load(Ordering::Relaxed) >= 12 || Instant::now() > deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
    });

    assert!(storms.load(Ordering::Relaxed) > 0, "no storm cycle");
    // Drain the leftovers single-threaded.
    let ctx = stm.register_thread();
    while let Some(v) = ctx.run(|tx| q.pop_front(tx)) {
        popped.fetch_add(1, Ordering::Relaxed);
        sum_out.fetch_add(v as i64, Ordering::Relaxed);
    }
    assert_eq!(
        pushed.load(Ordering::Relaxed),
        popped.load(Ordering::Relaxed),
        "every pushed item popped exactly once"
    );
    assert_eq!(
        sum_in.load(Ordering::Relaxed),
        sum_out.load(Ordering::Relaxed),
        "value sums conserved"
    );
    assert_all_bindings_in(&*q, home.id(), "queue");
}

/// Slot-subset migration mid-traffic: half of a hash map's live nodes move
/// to a sibling partition while writers keep transferring between keys —
/// the map is deliberately torn across two partitions and must still be
/// linearizable (conserved sum), then heal completely on the way home.
#[test]
fn hashmap_slot_subset_migration_conserves_sum() {
    const KEYS: u64 = 32;
    const INITIAL: u64 = 1_000;
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home"));
    let side = stm.new_partition(PartitionConfig::named("side"));
    let map = Arc::new(THashMap::new(Arc::clone(&home), 16));
    {
        let ctx = stm.register_thread();
        for k in 0..KEYS {
            ctx.run(|tx| map.put(tx, k, INITIAL).map(|_| ()));
        }
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let ctx = stm.register_thread();
            let (map, stop) = (&map, &stop);
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = r % KEYS;
                    let to = (r >> 8) % KEYS;
                    let amt = r % 90;
                    ctx.run(|tx| -> TxResult<()> {
                        let f = map.get(tx, from)?.unwrap_or(0);
                        map.put(tx, from, f.wrapping_sub(amt))?;
                        if r % 5 == 0 {
                            std::thread::yield_now();
                        }
                        let t2 = map.get(tx, to)?.unwrap_or(0);
                        map.put(tx, to, t2.wrapping_add(amt))?;
                        Ok(())
                    });
                }
            });
        }
        {
            let stm2 = stm.clone();
            let (map, home, side, stop) = (&map, &home, &side, &stop);
            s.spawn(move || {
                for round in 0..12usize {
                    // Tear: move a rotating half of the live nodes out.
                    let live = map.arena().live_handles();
                    let subset: Vec<_> = live.iter().copied().skip(round % 2).step_by(2).collect();
                    if !subset.is_empty() {
                        let _ = stm2.migrate_batch(&map.arena().slots_of(&subset), side);
                    }
                    std::thread::sleep(Duration::from_millis(3));
                    // Heal: whole-collection migration home collects the
                    // torn slots' partition into the involved set.
                    let _ = stm2.migrate_collection(&**map, home);
                    std::thread::sleep(Duration::from_millis(3));
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    let total: u64 = map
        .snapshot_pairs()
        .into_iter()
        .fold(0u64, |acc, (_, v)| acc.wrapping_add(v));
    assert_eq!(total, KEYS.wrapping_mul(INITIAL), "sum conserved");
    // Heal once more from a quiescent state (the storm's last word may
    // have been a tear).
    let _ = stm.migrate_collection(&*map, &home);
    assert_all_bindings_in(&*map, home.id(), "hash map");
    assert_eq!(map.partition_of(), home.id());
}
