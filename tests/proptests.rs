//! Property-based tests across the workspace: structure semantics vs
//! models, red-black invariants, partitioner soundness/minimality, word
//! encodings, genome packing algebra.

use proptest::prelude::*;

use partstm::analysis::{
    merge_chain, partition, AccessKind, AccessSite, AllocSite, ProgramModel,
    Strategy as PartStrategy,
};
use partstm::core::{MigratableCollection, PartitionConfig, Stm, TxWord};
use partstm::structures::{Bank, IntSet, THashSet, TLinkedList, TRbTree, TSkipList};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    (0..3u8, 0..key_range).prop_map(|(kind, k)| match kind {
        0 => Op::Insert(k),
        1 => Op::Remove(k),
        _ => Op::Contains(k),
    })
}

/// A structure op or a structural action (migration, split, orec-table
/// resize), for the interleaving properties.
#[derive(Debug, Clone, Copy)]
enum MigOp {
    Op(Op),
    /// Migrate the whole collection to partition `i % parts`.
    Migrate(u8),
    /// Split the collection into a fresh partition.
    Split,
    /// Resize the collection's current home orec table (size ladder
    /// indexed by the payload).
    Resize(u8),
    /// Privatize the collection's current home, bulk-insert the key
    /// without a transaction, republish.
    Privatize(u64),
}

/// The orec-table size ladder the resize interleavings walk.
const RESIZE_LADDER: [usize; 4] = [32, 128, 512, 2048];

fn mig_op_strategy(key_range: u64) -> impl Strategy<Value = MigOp> {
    // Weighted by hand (the proptest shim has no `prop_oneof!`): 7/11
    // structure ops, then one share each for whole-collection migrations,
    // splits, orec-table resizes and privatize/bulk-insert/republish
    // excursions.
    (0..11u8, 0..3u8, 0..key_range, 0..4u8).prop_map(|(w, kind, k, p)| match w {
        0..=6 => MigOp::Op(match kind {
            0 => Op::Insert(k),
            1 => Op::Remove(k),
            _ => Op::Contains(k),
        }),
        7 => MigOp::Migrate(p),
        8 => MigOp::Split,
        9 => MigOp::Resize(p),
        _ => MigOp::Privatize(k),
    })
}

/// Runs an op sequence against a structure and a `BTreeSet` model; every
/// return value and the final snapshot must agree.
fn check_against_model(make: impl Fn(&Stm) -> Box<dyn IntSet>, ops: &[Op]) {
    let stm = Stm::new();
    let set = make(&stm);
    let ctx = stm.register_thread();
    let mut model = std::collections::BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                assert_eq!(
                    ctx.run(|tx| set.insert(tx, k)),
                    model.insert(k),
                    "step {i}: {op:?}"
                )
            }
            Op::Remove(k) => {
                assert_eq!(
                    ctx.run(|tx| set.remove(tx, k)),
                    model.remove(&k),
                    "step {i}: {op:?}"
                )
            }
            Op::Contains(k) => assert_eq!(
                ctx.run(|tx| set.contains(tx, k)),
                model.contains(&k),
                "step {i}: {op:?}"
            ),
        }
    }
    let expect: Vec<u64> = model.into_iter().collect();
    assert_eq!(set.snapshot_keys(), expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linkedlist_matches_model(ops in proptest::collection::vec(op_strategy(32), 1..200)) {
        check_against_model(
            |stm| Box::new(TLinkedList::new(stm.new_partition(PartitionConfig::named("l")))),
            &ops,
        );
    }

    #[test]
    fn skiplist_matches_model(ops in proptest::collection::vec(op_strategy(64), 1..200)) {
        check_against_model(
            |stm| Box::new(TSkipList::new(stm.new_partition(PartitionConfig::named("s")))),
            &ops,
        );
    }

    #[test]
    fn rbtree_matches_model_and_stays_balanced(
        ops in proptest::collection::vec(op_strategy(48), 1..250)
    ) {
        let stm = Stm::new();
        let tree = TRbTree::new(stm.new_partition(PartitionConfig::named("t")));
        let ctx = stm.register_thread();
        let mut model = std::collections::BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.insert(tx, k)), model.insert(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.remove(tx, k)), model.remove(&k));
                }
                Op::Contains(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.contains(tx, k)), model.contains(&k));
                }
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        let expect: Vec<u64> = model.iter().copied().collect();
        prop_assert_eq!(tree.snapshot_keys(), expect);
    }

    #[test]
    fn hashset_matches_model(ops in proptest::collection::vec(op_strategy(96), 1..200)) {
        check_against_model(
            |stm| Box::new(THashSet::new(stm.new_partition(PartitionConfig::named("h")), 8)),
            &ops,
        );
    }

    /// Arbitrary interleavings of set ops with arena migrations (whole-
    /// collection moves between four partitions plus splits into fresh
    /// ones) preserve the set's contents exactly: every op's return value
    /// matches the model, no node is ever torn (snapshot equals the model
    /// after every migration), and the collection's home always tracks the
    /// last migration.
    #[test]
    fn hashset_survives_arbitrary_migration_interleavings(
        ops in proptest::collection::vec(mig_op_strategy(48), 1..150)
    ) {
        let stm = Stm::new();
        let parts: Vec<_> = (0..4)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let set = THashSet::new(std::sync::Arc::clone(&parts[0]), 8);
        let ctx = stm.register_thread();
        let mut model = std::collections::BTreeSet::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                MigOp::Op(Op::Insert(k)) => {
                    prop_assert_eq!(ctx.run(|tx| set.insert(tx, k)), model.insert(k), "step {}", i);
                }
                MigOp::Op(Op::Remove(k)) => {
                    prop_assert_eq!(ctx.run(|tx| set.remove(tx, k)), model.remove(&k), "step {}", i);
                }
                MigOp::Op(Op::Contains(k)) => {
                    prop_assert_eq!(
                        ctx.run(|tx| set.contains(tx, k)),
                        model.contains(&k),
                        "step {}", i
                    );
                }
                MigOp::Migrate(p) => {
                    let dst = &parts[p as usize % parts.len()];
                    let _ = stm.migrate_collection(&set, dst);
                    prop_assert_eq!(set.partition_of(), dst.id());
                    // No torn nodes: the full contents survive the move.
                    let expect: Vec<u64> = model.iter().copied().collect();
                    prop_assert_eq!(set.snapshot_keys(), expect, "after migrate step {}", i);
                }
                MigOp::Split => {
                    let (dst, _) = stm.split_collection(
                        &set,
                        PartitionConfig::named(format!("split{i}")),
                    );
                    prop_assert_eq!(set.partition_of(), dst.id());
                    let expect: Vec<u64> = model.iter().copied().collect();
                    prop_assert_eq!(set.snapshot_keys(), expect, "after split step {}", i);
                }
                MigOp::Resize(p) => {
                    // Resize the set's *current* home (which a preceding
                    // Migrate/Split may just have changed): contents and
                    // home must be untouched — only conflict-detection
                    // granularity changes.
                    let home = set.home_partition();
                    let before = home.id();
                    let _ = stm.resize_orecs(
                        &home,
                        RESIZE_LADDER[p as usize % RESIZE_LADDER.len()],
                    );
                    prop_assert_eq!(set.partition_of(), before, "resize moves no data");
                    let expect: Vec<u64> = model.iter().copied().collect();
                    prop_assert_eq!(set.snapshot_keys(), expect, "after resize step {}", i);
                }
                MigOp::Privatize(k) => {
                    // Privatize the set's current home, insert a key at
                    // raw-memory speed, republish: the bulk insert's
                    // return value matches the model and the key is
                    // transactional truth immediately after the hold.
                    let home = set.home_partition();
                    let guard = stm.privatize(&home).expect("single-threaded: uncontended");
                    prop_assert_eq!(
                        set.bulk_insert(&guard, k),
                        model.insert(k),
                        "bulk_insert at step {}", i
                    );
                    guard.republish();
                    let expect: Vec<u64> = model.iter().copied().collect();
                    prop_assert_eq!(set.snapshot_keys(), expect, "after privatize step {}", i);
                }
            }
        }
        let expect: Vec<u64> = model.into_iter().collect();
        prop_assert_eq!(set.snapshot_keys(), expect, "final snapshot");
    }

    /// Bound-vs-raw equivalence extended to migrated collections: after
    /// any sequence of deposits and migrations, reading an account through
    /// the bound tier equals reading its raw `TVar` through the partition
    /// the binding currently names.
    #[test]
    fn bank_bound_equals_raw_across_migrations(
        steps in proptest::collection::vec((0..8usize, -50i64..50, 0..5u8), 1..60)
    ) {
        let stm = Stm::new();
        let parts: Vec<_> = (0..3)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("b{i}"))))
            .collect();
        let bank = Bank::new(std::sync::Arc::clone(&parts[0]), 8, 100);
        let ctx = stm.register_thread();
        let mut model = [100i64; 8];
        for &(i, amt, mig) in &steps {
            ctx.run(|tx| bank.deposit(tx, i, amt));
            model[i] += amt;
            if mig < 2 {
                let dst = &parts[(mig as usize + i) % parts.len()];
                let _ = stm.migrate_collection(&bank, dst);
                prop_assert_eq!(bank.partition_of(), dst.id());
            }
            // Equivalence at the touched account: bound read == raw read
            // through the *current* binding's partition.
            let var = bank.account(i);
            let home = var.partition();
            let (bound, raw) = ctx.run(|tx| {
                let b = tx.read(var)?;
                let r = tx.read_raw(&home, var.var())?;
                Ok((b, r))
            });
            prop_assert_eq!(bound, raw);
            prop_assert_eq!(bound, model[i]);
        }
        for (i, expect) in model.iter().enumerate() {
            prop_assert_eq!(ctx.run(|tx| bank.balance(tx, i)), *expect);
        }
    }

    #[test]
    fn txword_roundtrips(v in any::<u64>(), i in any::<i64>(), f in any::<f64>(), b in any::<bool>()) {
        prop_assert_eq!(u64::from_word(v.to_word()), v);
        prop_assert_eq!(i64::from_word(i.to_word()), i);
        prop_assert_eq!(bool::from_word(b.to_word()), b);
        if f.is_nan() {
            prop_assert!(f64::from_word(f.to_word()).is_nan());
        } else {
            prop_assert_eq!(f64::from_word(f.to_word()), f);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conserved-sum invariant across an arbitrary orec-resize storm under
    /// concurrent mutation: worker threads run transfers while the main
    /// thread walks a generated resize sequence live on the same
    /// partition. Every quiesce window the storm opens must drain and
    /// restart the in-flight transfers without losing an update.
    #[test]
    fn bank_conserves_total_under_concurrent_resize_storm(
        sizes in proptest::collection::vec(0..4u8, 2..10)
    ) {
        const ACCOUNTS: usize = 24;
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("storm").orecs(32));
        let accounts: Vec<std::sync::Arc<partstm::core::PVar<i64>>> =
            (0..ACCOUNTS).map(|_| std::sync::Arc::new(part.tvar(1_000))).collect();
        std::thread::scope(|s| {
            for t in 0..3usize {
                let ctx = stm.register_thread();
                let accounts = &accounts;
                s.spawn(move || {
                    let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..400 {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        let from = (r % ACCOUNTS as u64) as usize;
                        let to = ((r >> 8) % ACCOUNTS as u64) as usize;
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            let v = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], v + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            for &sz in &sizes {
                let _ = stm.resize_orecs(&part, RESIZE_LADDER[sz as usize % RESIZE_LADDER.len()]);
                std::thread::yield_now();
            }
        });
        let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
        prop_assert_eq!(total, ACCOUNTS as i64 * 1_000, "sum conserved through the storm");
    }
}

/// Random bipartite program models for partitioner properties.
fn model_strategy() -> impl Strategy<Value = ProgramModel> {
    (2usize..12, 1usize..16).prop_flat_map(|(n_alloc, n_access)| {
        let touch = proptest::collection::btree_set(0..n_alloc as u32, 1..=3.min(n_alloc));
        proptest::collection::vec(touch, n_access).prop_map(move |touches| ProgramModel {
            name: "random".into(),
            alloc_sites: (0..n_alloc as u32)
                .map(|id| AllocSite {
                    id,
                    name: format!("a{id}"),
                    type_name: format!("T{}", id % 3),
                    context: None,
                })
                .collect(),
            access_sites: touches
                .into_iter()
                .enumerate()
                .map(|(id, t)| AccessSite {
                    id: id as u32,
                    func: format!("f{id}"),
                    kind: AccessKind::ReadWrite,
                    may_touch: t.into_iter().collect(),
                })
                .collect(),
        })
    })
}

/// Brute-force connected components of the bipartite graph.
fn components(model: &ProgramModel) -> Vec<Vec<u32>> {
    let n = model.alloc_sites.len();
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start].is_some() {
            continue;
        }
        let c = next;
        next += 1;
        let mut stack = vec![start as u32];
        comp[start] = Some(c);
        while let Some(cur) = stack.pop() {
            for s in &model.access_sites {
                if s.may_touch.contains(&cur) {
                    for &nb in &s.may_touch {
                        if comp[nb as usize].is_none() {
                            comp[nb as usize] = Some(c);
                            stack.push(nb);
                        }
                    }
                }
            }
        }
    }
    let mut out = vec![Vec::new(); next];
    for (i, c) in comp.iter().enumerate() {
        out[c.unwrap()].push(i as u32);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every access site's may-touch set lands in one class.
    /// Minimality: the classes are exactly the connected components.
    #[test]
    fn partitioner_sound_and_minimal(model in model_strategy()) {
        let plan = partition(&model, PartStrategy::MayTouch).unwrap();
        for s in &model.access_sites {
            let c = plan.class_of_access(s.id).unwrap();
            for t in &s.may_touch {
                prop_assert_eq!(plan.class_of_alloc(*t), Some(c));
            }
        }
        let comps = components(&model);
        prop_assert_eq!(plan.partition_count(), comps.len());
        // Same-component pairs share a class; cross-component pairs don't.
        for comp in &comps {
            let c0 = plan.class_of_alloc(comp[0]);
            for &m in comp {
                prop_assert_eq!(plan.class_of_alloc(m), c0);
            }
        }
    }

    /// merge_chain returns a witness iff two sites share a class, and the
    /// witness is a genuine connecting path.
    #[test]
    fn merge_chain_is_a_valid_witness(model in model_strategy()) {
        let plan = partition(&model, PartStrategy::MayTouch).unwrap();
        let a = model.alloc_sites.first().unwrap().id;
        let b = model.alloc_sites.last().unwrap().id;
        let chain = merge_chain(&model, a, b);
        let same = plan.class_of_alloc(a) == plan.class_of_alloc(b);
        prop_assert_eq!(chain.is_some(), same);
        if let Some(chain) = chain {
            // Each consecutive pair of access sites must overlap in an
            // alloc site, and the chain's ends must touch a and b.
            if !chain.is_empty() {
                let site = |id: u32| model.access_sites.iter().find(|s| s.id == id).unwrap();
                prop_assert!(site(chain[0]).may_touch.contains(&a));
                prop_assert!(site(*chain.last().unwrap()).may_touch.contains(&b));
                for w in chain.windows(2) {
                    let s1 = site(w[0]);
                    let s2 = site(w[1]);
                    prop_assert!(s1.may_touch.iter().any(|t| s2.may_touch.contains(t)));
                }
            }
        }
    }

    /// Type seeding only ever coarsens.
    #[test]
    fn type_seeding_is_coarser(model in model_strategy()) {
        let fine = partition(&model, PartStrategy::MayTouch).unwrap();
        let coarse = partition(&model, PartStrategy::TypeSeeded).unwrap();
        prop_assert!(coarse.partition_count() <= fine.partition_count());
        // Coarsening refines the same-class relation in one direction only.
        for x in &model.alloc_sites {
            for y in &model.alloc_sites {
                if fine.class_of_alloc(x.id) == fine.class_of_alloc(y.id) {
                    prop_assert_eq!(
                        coarse.class_of_alloc(x.id),
                        coarse.class_of_alloc(y.id)
                    );
                }
            }
        }
    }
}

// Genome packing algebra on random bases.
proptest! {
    #[test]
    fn genome_pack_overlap_identity(
        bases in proptest::collection::vec(0u8..4, 48..96),
        start in 0usize..16,
        o in 1usize..12,
    ) {
        use partstm::stamp::genome::pack;
        let s = 16usize;
        let a = pack(&bases, start, s);
        let b = pack(&bases, start + (s - o), s);
        // suffix_o(a) == prefix_o(b) by construction.
        let suffix = a & ((1u64 << (2 * o)) - 1);
        let prefix = b >> (2 * (s - o));
        prop_assert_eq!(suffix, prefix);
    }
}
