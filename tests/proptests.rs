//! Property-based tests across the workspace: structure semantics vs
//! models, red-black invariants, partitioner soundness/minimality, word
//! encodings, genome packing algebra.

use proptest::prelude::*;

use partstm::analysis::{
    merge_chain, partition, AccessKind, AccessSite, AllocSite, ProgramModel,
    Strategy as PartStrategy,
};
use partstm::core::{PartitionConfig, Stm, TxWord};
use partstm::structures::{IntSet, THashSet, TLinkedList, TRbTree, TSkipList};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    (0..3u8, 0..key_range).prop_map(|(kind, k)| match kind {
        0 => Op::Insert(k),
        1 => Op::Remove(k),
        _ => Op::Contains(k),
    })
}

/// Runs an op sequence against a structure and a `BTreeSet` model; every
/// return value and the final snapshot must agree.
fn check_against_model(make: impl Fn(&Stm) -> Box<dyn IntSet>, ops: &[Op]) {
    let stm = Stm::new();
    let set = make(&stm);
    let ctx = stm.register_thread();
    let mut model = std::collections::BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                assert_eq!(
                    ctx.run(|tx| set.insert(tx, k)),
                    model.insert(k),
                    "step {i}: {op:?}"
                )
            }
            Op::Remove(k) => {
                assert_eq!(
                    ctx.run(|tx| set.remove(tx, k)),
                    model.remove(&k),
                    "step {i}: {op:?}"
                )
            }
            Op::Contains(k) => assert_eq!(
                ctx.run(|tx| set.contains(tx, k)),
                model.contains(&k),
                "step {i}: {op:?}"
            ),
        }
    }
    let expect: Vec<u64> = model.into_iter().collect();
    assert_eq!(set.snapshot_keys(), expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linkedlist_matches_model(ops in proptest::collection::vec(op_strategy(32), 1..200)) {
        check_against_model(
            |stm| Box::new(TLinkedList::new(stm.new_partition(PartitionConfig::named("l")))),
            &ops,
        );
    }

    #[test]
    fn skiplist_matches_model(ops in proptest::collection::vec(op_strategy(64), 1..200)) {
        check_against_model(
            |stm| Box::new(TSkipList::new(stm.new_partition(PartitionConfig::named("s")))),
            &ops,
        );
    }

    #[test]
    fn rbtree_matches_model_and_stays_balanced(
        ops in proptest::collection::vec(op_strategy(48), 1..250)
    ) {
        let stm = Stm::new();
        let tree = TRbTree::new(stm.new_partition(PartitionConfig::named("t")));
        let ctx = stm.register_thread();
        let mut model = std::collections::BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.insert(tx, k)), model.insert(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.remove(tx, k)), model.remove(&k));
                }
                Op::Contains(k) => {
                    prop_assert_eq!(ctx.run(|tx| tree.contains(tx, k)), model.contains(&k));
                }
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        let expect: Vec<u64> = model.iter().copied().collect();
        prop_assert_eq!(tree.snapshot_keys(), expect);
    }

    #[test]
    fn hashset_matches_model(ops in proptest::collection::vec(op_strategy(96), 1..200)) {
        check_against_model(
            |stm| Box::new(THashSet::new(stm.new_partition(PartitionConfig::named("h")), 8)),
            &ops,
        );
    }

    #[test]
    fn txword_roundtrips(v in any::<u64>(), i in any::<i64>(), f in any::<f64>(), b in any::<bool>()) {
        prop_assert_eq!(u64::from_word(v.to_word()), v);
        prop_assert_eq!(i64::from_word(i.to_word()), i);
        prop_assert_eq!(bool::from_word(b.to_word()), b);
        if f.is_nan() {
            prop_assert!(f64::from_word(f.to_word()).is_nan());
        } else {
            prop_assert_eq!(f64::from_word(f.to_word()), f);
        }
    }
}

/// Random bipartite program models for partitioner properties.
fn model_strategy() -> impl Strategy<Value = ProgramModel> {
    (2usize..12, 1usize..16).prop_flat_map(|(n_alloc, n_access)| {
        let touch = proptest::collection::btree_set(0..n_alloc as u32, 1..=3.min(n_alloc));
        proptest::collection::vec(touch, n_access).prop_map(move |touches| ProgramModel {
            name: "random".into(),
            alloc_sites: (0..n_alloc as u32)
                .map(|id| AllocSite {
                    id,
                    name: format!("a{id}"),
                    type_name: format!("T{}", id % 3),
                    context: None,
                })
                .collect(),
            access_sites: touches
                .into_iter()
                .enumerate()
                .map(|(id, t)| AccessSite {
                    id: id as u32,
                    func: format!("f{id}"),
                    kind: AccessKind::ReadWrite,
                    may_touch: t.into_iter().collect(),
                })
                .collect(),
        })
    })
}

/// Brute-force connected components of the bipartite graph.
fn components(model: &ProgramModel) -> Vec<Vec<u32>> {
    let n = model.alloc_sites.len();
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start].is_some() {
            continue;
        }
        let c = next;
        next += 1;
        let mut stack = vec![start as u32];
        comp[start] = Some(c);
        while let Some(cur) = stack.pop() {
            for s in &model.access_sites {
                if s.may_touch.contains(&cur) {
                    for &nb in &s.may_touch {
                        if comp[nb as usize].is_none() {
                            comp[nb as usize] = Some(c);
                            stack.push(nb);
                        }
                    }
                }
            }
        }
    }
    let mut out = vec![Vec::new(); next];
    for (i, c) in comp.iter().enumerate() {
        out[c.unwrap()].push(i as u32);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every access site's may-touch set lands in one class.
    /// Minimality: the classes are exactly the connected components.
    #[test]
    fn partitioner_sound_and_minimal(model in model_strategy()) {
        let plan = partition(&model, PartStrategy::MayTouch).unwrap();
        for s in &model.access_sites {
            let c = plan.class_of_access(s.id).unwrap();
            for t in &s.may_touch {
                prop_assert_eq!(plan.class_of_alloc(*t), Some(c));
            }
        }
        let comps = components(&model);
        prop_assert_eq!(plan.partition_count(), comps.len());
        // Same-component pairs share a class; cross-component pairs don't.
        for comp in &comps {
            let c0 = plan.class_of_alloc(comp[0]);
            for &m in comp {
                prop_assert_eq!(plan.class_of_alloc(m), c0);
            }
        }
    }

    /// merge_chain returns a witness iff two sites share a class, and the
    /// witness is a genuine connecting path.
    #[test]
    fn merge_chain_is_a_valid_witness(model in model_strategy()) {
        let plan = partition(&model, PartStrategy::MayTouch).unwrap();
        let a = model.alloc_sites.first().unwrap().id;
        let b = model.alloc_sites.last().unwrap().id;
        let chain = merge_chain(&model, a, b);
        let same = plan.class_of_alloc(a) == plan.class_of_alloc(b);
        prop_assert_eq!(chain.is_some(), same);
        if let Some(chain) = chain {
            // Each consecutive pair of access sites must overlap in an
            // alloc site, and the chain's ends must touch a and b.
            if !chain.is_empty() {
                let site = |id: u32| model.access_sites.iter().find(|s| s.id == id).unwrap();
                prop_assert!(site(chain[0]).may_touch.contains(&a));
                prop_assert!(site(*chain.last().unwrap()).may_touch.contains(&b));
                for w in chain.windows(2) {
                    let s1 = site(w[0]);
                    let s2 = site(w[1]);
                    prop_assert!(s1.may_touch.iter().any(|t| s2.may_touch.contains(t)));
                }
            }
        }
    }

    /// Type seeding only ever coarsens.
    #[test]
    fn type_seeding_is_coarser(model in model_strategy()) {
        let fine = partition(&model, PartStrategy::MayTouch).unwrap();
        let coarse = partition(&model, PartStrategy::TypeSeeded).unwrap();
        prop_assert!(coarse.partition_count() <= fine.partition_count());
        // Coarsening refines the same-class relation in one direction only.
        for x in &model.alloc_sites {
            for y in &model.alloc_sites {
                if fine.class_of_alloc(x.id) == fine.class_of_alloc(y.id) {
                    prop_assert_eq!(
                        coarse.class_of_alloc(x.id),
                        coarse.class_of_alloc(y.id)
                    );
                }
            }
        }
    }
}

// Genome packing algebra on random bases.
proptest! {
    #[test]
    fn genome_pack_overlap_identity(
        bases in proptest::collection::vec(0u8..4, 48..96),
        start in 0usize..16,
        o in 1usize..12,
    ) {
        use partstm::stamp::genome::pack;
        let s = 16usize;
        let a = pack(&bases, start, s);
        let b = pack(&bases, start + (s - o), s);
        // suffix_o(a) == prefix_o(b) by construction.
        let suffix = a & ((1u64 << (2 * o)) - 1);
        let prefix = b >> (2 * (s - o));
        prop_assert_eq!(suffix, prefix);
    }
}
