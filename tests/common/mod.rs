//! Helpers shared by the migration-oriented integration suites.

use partstm::core::{MigratableCollection, PartitionId};

/// Every binding the collection enumerates (home, every installed slot,
/// roots) must currently point at `pid`. A collection that enumerates no
/// bindings fails too — a vacuous pass would mask a broken enumerator.
pub fn assert_all_bindings_in(c: &dyn MigratableCollection, pid: PartitionId, what: &str) {
    let mut total = 0usize;
    let mut strays = 0usize;
    c.for_each_binding(&mut |b| {
        total += 1;
        if b.partition_id() != pid {
            strays += 1;
        }
    });
    assert!(total > 0, "{what}: collection enumerates no bindings");
    assert_eq!(strays, 0, "{what}: {strays}/{total} bindings left behind");
}
