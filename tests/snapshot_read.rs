//! The multi-version snapshot read tier under fire: read-only
//! transactions must never abort on a data conflict and must always
//! observe a consistent snapshot (the conserved-sum probe), no matter
//! what the writers *or the control plane* — orec resizes, ring-depth
//! changes, partition splits and migrations — are doing around them.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use partstm::core::{Migratable, PVar, PartitionConfig, Stm, SwitchOutcome};

const ACCOUNTS: usize = 16;
const INITIAL: i64 = 1_000;
const EXPECT: i64 = ACCOUNTS as i64 * INITIAL;

fn bank(part: &Arc<partstm::core::Partition>) -> Vec<Arc<PVar<i64>>> {
    (0..ACCOUNTS)
        .map(|_| Arc::new(part.tvar(INITIAL)))
        .collect()
}

/// Spawns `n` transfer threads inside `scope`; they run until `stop`.
fn spawn_writers<'s>(
    scope: &'s std::thread::Scope<'s, '_>,
    stm: &'s Stm,
    accounts: &'s [Arc<PVar<i64>>],
    stop: &'s AtomicBool,
    n: usize,
) {
    for t in 0..n {
        let ctx = stm.register_thread();
        scope.spawn(move || {
            let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            while !stop.load(Ordering::Relaxed) {
                r ^= r << 13;
                r ^= r >> 7;
                r ^= r << 17;
                let from = (r % ACCOUNTS as u64) as usize;
                let to = ((r >> 8) % ACCOUNTS as u64) as usize;
                let amt = (r % 90) as i64;
                ctx.run(|tx| {
                    let f = tx.read(&accounts[from])?;
                    tx.write(&accounts[from], f - amt)?;
                    let v = tx.read(&accounts[to])?;
                    tx.write(&accounts[to], v + amt)?;
                    Ok(())
                });
            }
        });
    }
}

/// Data conflicts alone never abort a snapshot reader: with no control
/// plane running, every closure invocation completes — attempts equals
/// successes exactly — while each observed sum is consistent.
#[test]
fn snapshot_reads_are_consistent_and_abort_free_under_write_storm() {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("storm").ring(4));
    let accounts = bank(&part);
    let stop = AtomicBool::new(false);
    let attempts = AtomicU64::new(0);
    let successes = AtomicU64::new(0);
    std::thread::scope(|s| {
        spawn_writers(s, &stm, &accounts, &stop, 3);
        for _ in 0..2 {
            let ctx = stm.register_thread();
            let (accounts, stop, attempts, successes) = (&accounts, &stop, &attempts, &successes);
            s.spawn(move || {
                let mut tries = 0u64;
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let sum = ctx.snapshot_read(|tx| {
                        tries += 1;
                        let mut sum = 0i64;
                        for a in accounts {
                            sum += tx.read(a)?;
                        }
                        Ok(sum)
                    });
                    done += 1;
                    if sum != EXPECT {
                        stop.store(true, Ordering::Relaxed);
                        panic!("inconsistent snapshot: {sum} != {EXPECT}");
                    }
                }
                attempts.fetch_add(tries, Ordering::Relaxed);
                successes.fetch_add(done, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_millis(1200));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        successes.load(Ordering::Relaxed),
        "a snapshot reader aborted on a pure data conflict"
    );
    assert!(successes.load(Ordering::Relaxed) > 0);
    let s = part.stats();
    assert!(s.snapshot_commits > 0, "snapshot commits must be counted");
    assert_eq!(s.snapshot_restarts, 0, "no control plane ran");
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(total, EXPECT);
}

/// Orec-table resizes and live ring-depth changes race the readers: a
/// reader that catches a quiesce window restarts (that is the designed
/// response), but every sum it *returns* is still consistent.
#[test]
fn snapshot_reads_survive_orec_and_ring_resizes() {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("resizy").orecs(64).ring(2));
    let accounts = bank(&part);
    let stop = AtomicBool::new(false);
    let switches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        spawn_writers(s, &stm, &accounts, &stop, 2);
        for _ in 0..2 {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, &stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let sum = ctx.snapshot_read(|tx| {
                        let mut sum = 0i64;
                        for a in accounts {
                            sum += tx.read(a)?;
                        }
                        Ok(sum)
                    });
                    if sum != EXPECT {
                        stop.store(true, Ordering::Relaxed);
                        panic!("inconsistent snapshot: {sum} != {EXPECT}");
                    }
                }
            });
        }
        // Control plane: alternate table sizes and ring depths as fast as
        // the quiesce protocol allows, deadline-bounded.
        {
            let stm2 = stm.clone();
            let (part, stop, switches) = (Arc::clone(&part), &stop, &switches);
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(4);
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let o1 = stm2.resize_orecs(&part, if i.is_multiple_of(2) { 256 } else { 64 });
                    let o2 = stm2.set_ring_depth(&part, if i.is_multiple_of(2) { 8 } else { 2 });
                    i += 1;
                    if o1 == SwitchOutcome::Switched && o2 == SwitchOutcome::Switched {
                        switches.fetch_add(1, Ordering::Relaxed);
                    }
                    if switches.load(Ordering::Relaxed) >= 20 || Instant::now() > deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    assert!(
        switches.load(Ordering::Relaxed) > 0,
        "the storm must have resized at least once"
    );
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(total, EXPECT);
}

/// Split/migrate/merge storms rebind accounts between partitions while
/// snapshot readers sum across all of them in one pinned snapshot: the
/// sum must stay conserved even when a read lands mid-migration (the
/// binding recheck turns that into a restart, never a wrong value).
#[test]
fn snapshot_reads_span_partitions_across_split_and_migrate_storms() {
    let stm = Stm::new();
    let home = stm.new_partition(PartitionConfig::named("home").ring(4));
    let accounts = bank(&home);
    let stop = AtomicBool::new(false);
    let storms = AtomicUsize::new(0);
    std::thread::scope(|s| {
        spawn_writers(s, &stm, &accounts, &stop, 2);
        for _ in 0..2 {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, &stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let sum = ctx.snapshot_read(|tx| {
                        let mut sum = 0i64;
                        for a in accounts {
                            sum += tx.read(a)?;
                        }
                        Ok(sum)
                    });
                    if sum != EXPECT {
                        stop.store(true, Ordering::Relaxed);
                        panic!("inconsistent snapshot: {sum} != {EXPECT}");
                    }
                }
            });
        }
        {
            let stm2 = stm.clone();
            let (accounts, home, stop, storms) = (&accounts, Arc::clone(&home), &stop, &storms);
            s.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(4);
                while !stop.load(Ordering::Relaxed) {
                    let evens: Vec<&dyn Migratable> = accounts
                        .iter()
                        .step_by(2)
                        .map(|a| &**a as &dyn Migratable)
                        .collect();
                    let all: Vec<&dyn Migratable> =
                        accounts.iter().map(|a| &**a as &dyn Migratable).collect();
                    let (side, o1) =
                        stm2.split_partition(&home, PartitionConfig::named("side").ring(2), &evens);
                    let o2 = stm2.merge_partitions(&[&side], &home, &all);
                    if o1 == SwitchOutcome::Switched && o2 == SwitchOutcome::Switched {
                        storms.fetch_add(1, Ordering::Relaxed);
                    }
                    if storms.load(Ordering::Relaxed) >= 10 || Instant::now() > deadline {
                        stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    assert!(
        storms.load(Ordering::Relaxed) > 0,
        "the storm must have split and merged at least once"
    );
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(total, EXPECT);
}

/// Failure injection: a reader that has already materialized a view of
/// one partition then straddles a quiesce window on a *second* partition
/// restarts the whole attempt (a snapshot must not mix generations) and
/// succeeds once the window clears.
#[test]
fn snapshot_reader_straddling_a_quiesce_window_restarts_cleanly() {
    let stm = Stm::new();
    let pa = stm.new_partition(PartitionConfig::named("a"));
    let pb = stm.new_partition(PartitionConfig::named("b"));
    let x = pa.tvar(7i64);
    let y = pb.tvar(35i64);
    let ctx = stm.register_thread();
    let mut straddles = 0u32;
    let sum = ctx.snapshot_read(|tx| {
        let vx = tx.read(&x)?;
        if straddles == 0 {
            // Inject the switch flag *after* partition `a` is already in
            // the attempt's view set: the next read straddles the window.
            pb.debug_force_switch_flag(true);
        }
        match tx.read(&y) {
            Ok(vy) => Ok(vx + vy),
            Err(e) => {
                straddles += 1;
                pb.debug_force_switch_flag(false);
                Err(e)
            }
        }
    });
    assert_eq!(sum, 42);
    assert_eq!(straddles, 1, "exactly one attempt must straddle the window");
    let sb = pb.stats();
    assert_eq!(sb.aborts_switching, 1);
    assert_eq!(sb.snapshot_restarts, 1);
    // The partition read *before* the injected window is uncharged.
    assert_eq!(pa.stats().snapshot_restarts, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Against random transfer histories and random live ring-depth
    /// changes, a quiescent snapshot agrees with direct reads on every
    /// single account and every mid-history snapshot sum is conserved.
    #[test]
    fn snapshot_sums_match_direct_reads_under_random_histories(
        depth in 1usize..=8,
        ops in proptest::collection::vec((0..ACCOUNTS, 0..ACCOUNTS, 0..100i64), 1..60),
        redepth_at in 0usize..60,
    ) {
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("hist").ring(depth));
        let accounts = bank(&part);
        let ctx = stm.register_thread();
        for (i, (from, to, amt)) in ops.iter().enumerate() {
            if i == redepth_at {
                // A live depth change mid-history must not lose records
                // a *future* snapshot needs (it cannot: discarded history
                // predates any post-change pin). The switch may time out
                // under contention; either outcome is a valid test case.
                let _ = stm.set_ring_depth(&part, depth * 2);
            }
            ctx.run(|tx| {
                let f = tx.read(&accounts[*from])?;
                tx.write(&accounts[*from], f - amt)?;
                let v = tx.read(&accounts[*to])?;
                tx.write(&accounts[*to], v + amt)?;
                Ok(())
            });
            let sum = ctx.snapshot_read(|tx| {
                let mut sum = 0i64;
                for a in &accounts {
                    sum += tx.read(a)?;
                }
                Ok(sum)
            });
            prop_assert_eq!(sum, EXPECT, "snapshot sum diverged at op {}", i);
        }
        for (i, a) in accounts.iter().enumerate() {
            let direct = a.load_direct();
            let snap = ctx.snapshot_read(|tx| tx.read(a));
            prop_assert_eq!(snap, direct, "quiescent snapshot diverged on account {}", i);
        }
    }
}
