//! End-to-end application tests: the STAMP ports produce correct results
//! under concurrency, in every partitioning mode, with and without tuning.

use std::sync::Arc;

use partstm::core::Stm;
use partstm::stamp::genome::{self, GenomeConfig, GenomeParts};
use partstm::stamp::kmeans::{self, KmeansConfig};
use partstm::stamp::vacation::{self, Manager, ManagerParts, VacationConfig};
use partstm::tuning::{ThresholdPolicy, Thresholds};

fn tuner() -> Arc<ThresholdPolicy> {
    Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
        window: 512,
        min_commits: 64,
        ..Thresholds::default()
    }))
}

#[test]
fn vacation_invariants_all_modes() {
    for mode in ["single", "partitioned", "tuned"] {
        let stm = Stm::new();
        let parts = match mode {
            "single" => ManagerParts::single(&stm, false),
            "partitioned" => ManagerParts::partitioned(&stm, false),
            _ => {
                stm.set_tuner(tuner());
                ManagerParts::partitioned(&stm, true)
            }
        };
        let manager = Manager::new(parts);
        let cfg = VacationConfig::high(256);
        let ctx = stm.register_thread();
        vacation::populate(&ctx, &manager, &cfg);
        drop(ctx);
        let stats = vacation::run_vacation(&stm, &manager, &cfg, 4, 500);
        assert_eq!(stats.tasks(), 2000, "mode {mode}");
        assert!(stats.reservations > 0, "mode {mode}");
        manager
            .check_invariants()
            .unwrap_or_else(|e| panic!("mode {mode}: {e}"));
    }
}

#[test]
fn vacation_low_and_high_mixes_differ() {
    let stm = Stm::new();
    let manager = Manager::new(ManagerParts::partitioned(&stm, false));
    let low = VacationConfig::low(256);
    let ctx = stm.register_thread();
    vacation::populate(&ctx, &manager, &low);
    let stats = vacation::run_client(&ctx, &manager, &low, 1000, 7);
    // 98% user tasks in the low mix.
    assert!(
        stats.make_tasks > 950,
        "low mix is user-dominated: {stats:?}"
    );
    manager.check_invariants().unwrap();
}

#[test]
fn kmeans_parallel_equals_sequential() {
    let cfg = KmeansConfig {
        points: 600,
        dims: 6,
        clusters: 6,
        threshold: 0.0,
        max_iterations: 12,
        seed: 1234,
    };
    let points = kmeans::generate_points(&cfg);
    let seq = kmeans::run_kmeans_sequential(&cfg, &points);
    for threads in [1, 4] {
        let stm = Stm::new();
        let state = kmeans::make_state(&stm, &cfg, false);
        let par = kmeans::run_kmeans(&stm, &state, &cfg, &points, threads);
        assert_eq!(par.iterations, seq.iterations, "threads={threads}");
        let diffs = par
            .membership
            .iter()
            .zip(&seq.membership)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            diffs <= points.len() / 100,
            "threads={threads}: {diffs} membership diffs"
        );
    }
}

#[test]
fn kmeans_under_tuning_still_correct() {
    let cfg = KmeansConfig::high(2000);
    let points = kmeans::generate_points(&cfg);
    let seq = kmeans::run_kmeans_sequential(&cfg, &points);
    let stm = Stm::new();
    stm.set_tuner(tuner());
    let state = kmeans::make_state(&stm, &cfg, true);
    let par = kmeans::run_kmeans(&stm, &state, &cfg, &points, 4);
    let diffs = par
        .membership
        .iter()
        .zip(&seq.membership)
        .filter(|(a, b)| a != b)
        .count();
    assert!(diffs <= points.len() / 50, "{diffs} membership diffs");
}

#[test]
fn genome_reconstructs_in_all_modes() {
    let cfg = GenomeConfig::scaled(2048);
    let gene = genome::generate_gene(&cfg);
    let segs = genome::shred(&cfg, &gene);
    for mode in ["single", "partitioned", "tuned"] {
        let stm = Stm::new();
        let parts = match mode {
            "single" => GenomeParts::single(&stm, false),
            "partitioned" => GenomeParts::partitioned(&stm, false),
            _ => {
                stm.set_tuner(tuner());
                GenomeParts::partitioned(&stm, true)
            }
        };
        let res = genome::run_genome(&stm, &parts, &cfg, &segs, 4);
        assert_eq!(res.gene, gene, "mode {mode}");
        assert!(res.unique_segments > 0);
    }
}

#[test]
fn analysis_plan_matches_vacation_runtime_partitions() {
    // The full Figure-1 pipeline: analyze the model, materialize exactly
    // those classes, and confirm the manager's partitioning agrees.
    use partstm::analysis::{partition, Strategy};
    let model = vacation::partition_plan();
    let plan = partition(&model, Strategy::MayTouch).unwrap();
    let stm = Stm::new();
    let parts = ManagerParts::partitioned(&stm, false);
    assert_eq!(plan.partition_count(), parts.distinct().len());
}

#[test]
fn intruder_detects_all_attacks_in_all_modes() {
    use partstm::stamp::intruder::{self, Intruder, IntruderConfig, IntruderParts};
    let cfg = IntruderConfig::scaled(500);
    let (packets, attacks) = intruder::generate_stream(&cfg);
    for mode in ["single", "partitioned", "tuned"] {
        let stm = Stm::new();
        let parts = match mode {
            "single" => IntruderParts::single(&stm, false),
            "partitioned" => IntruderParts::partitioned(&stm, false),
            _ => {
                stm.set_tuner(tuner());
                IntruderParts::partitioned(&stm, true)
            }
        };
        let pipeline = Intruder::new(&stm, parts, &packets);
        let res = intruder::run_intruder(&stm, &pipeline, &packets, cfg.flows, 4);
        assert_eq!(res.flows, cfg.flows as u64, "mode {mode}");
        assert_eq!(res.attacks, attacks as u64, "mode {mode}");
    }
}
